//! # cm-index
//!
//! B+Tree substrate for the Correlation Maps (VLDB 2009) reproduction.
//!
//! The paper compares CMs against PostgreSQL secondary B+Trees and drives
//! CM-guided scans through a clustered index, so both must exist as real
//! structures here:
//!
//! * [`BPlusTree`] — a generic, arena-allocated B+Tree with configurable
//!   fanout, leaf chaining, and page-identified nodes so probes can be
//!   charged against the simulated disk node-by-node.
//! * [`SecondaryIndex`] — a *dense* index: one posting (RID) per tuple per
//!   key, exactly what makes B+Trees large and expensive to maintain in
//!   the paper (860 MB for the eBay table, vs. a 0.9 MB CM).
//! * [`ClusteredIndex`] — a *sparse* index over a clustered heap: one entry
//!   per distinct clustered value, mapping to the first heap RID holding
//!   it. CM lookups and predicate-rewrite scans descend this structure.
//!
//! All probes and updates charge their node accesses through
//! [`cm_storage::PageAccessor`], so the same index runs cold against
//! [`cm_storage::DiskSim`] or warm through [`cm_storage::BufferPool`].

pub mod btree;
pub mod clustered;
pub mod key;
pub mod secondary;

pub use btree::BPlusTree;
pub use clustered::ClusteredIndex;
pub use key::IndexKey;
pub use secondary::SecondaryIndex;
