//! Sparse clustered index over a clustered heap.
//!
//! When a heap file is loaded sorted on attribute `Ac`, every distinct
//! value of `Ac` occupies one contiguous RID range. [`ClusteredIndex`]
//! maps each distinct value to the first RID of its run; the run ends
//! where the next distinct value begins. A probe charges `height` page
//! reads — the `(seek_cost)(btree_height)` term the paper's cost model
//! charges per clustered value reached through a correlation (§4.1).

use crate::btree::BPlusTree;
use cm_storage::{FileId, HeapFile, PageAccessor, Rid, Value};
use std::ops::Bound;

/// Sparse index: one entry per distinct clustered value.
pub struct ClusteredIndex {
    col: usize,
    tree: BPlusTree<Value, u64>,
    file: FileId,
    heap_len: u64,
}

impl ClusteredIndex {
    /// Build over a heap that was bulk-loaded clustered on `col`.
    ///
    /// # Panics
    /// Panics (in debug builds) if the heap is not sorted on `col`; the
    /// structure is meaningless otherwise.
    pub fn build(heap: &HeapFile, col: usize, file: FileId, order: usize) -> Self {
        let mut tree = BPlusTree::new(order);
        let mut last: Option<Value> = None;
        for (rid, row) in heap.iter() {
            let v = &row[col];
            match &last {
                Some(prev) if prev == v => {}
                Some(prev) => {
                    debug_assert!(prev < v, "heap must be sorted on the clustered column");
                    tree.insert(v.clone(), rid.0);
                    last = Some(v.clone());
                }
                None => {
                    tree.insert(v.clone(), rid.0);
                    last = Some(v.clone());
                }
            }
        }
        ClusteredIndex { col, tree, file, heap_len: heap.len() }
    }

    /// Rebuild over a *recovered* heap: the first `sorted_len` rows were
    /// loaded clustered on `col` (deletes may since have tombstoned some
    /// to all-NULL), and the rest were appended live. The non-NULL
    /// subsequence of a sorted prefix is still sorted, so the prefix
    /// indexes the first surviving RID of each distinct value; tail rows
    /// replay the [`ClusteredIndex::note_append`] rule. Runs that lost
    /// their first rows start at the nearest surviving tombstone-free
    /// RID — scans may cover a few extra tombstoned slots, which match
    /// no predicate, so query answers are unchanged.
    pub fn restore(
        heap: &HeapFile,
        col: usize,
        sorted_len: u64,
        file: FileId,
        order: usize,
    ) -> Self {
        let mut tree = BPlusTree::new(order);
        let mut last: Option<Value> = None;
        for (rid, row) in heap.iter().take(sorted_len as usize) {
            let v = &row[col];
            if v.is_null() {
                continue;
            }
            match &last {
                Some(prev) if prev == v => {}
                _ => {
                    tree.insert(v.clone(), rid.0);
                    last = Some(v.clone());
                }
            }
        }
        let mut idx = ClusteredIndex { col, tree, file, heap_len: sorted_len.min(heap.len()) };
        for (rid, row) in heap.iter().skip(sorted_len as usize) {
            idx.note_append(&row[col], rid);
        }
        idx
    }

    /// The clustered column position.
    pub fn col(&self) -> usize {
        self.col
    }

    /// `btree_height` for the cost model.
    pub fn height(&self) -> usize {
        self.tree.height()
    }

    /// Number of distinct clustered values.
    pub fn distinct_values(&self) -> usize {
        self.tree.len()
    }

    /// The simulated file holding this index's pages.
    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// Record that the heap grew (appends during maintenance workloads).
    /// New distinct values at the tail are indexed; re-appearing values
    /// keep their original first-RID (the tail breaks clustering, exactly
    /// as appends to a once-`CLUSTER`ed PostgreSQL table do). NULLs bump
    /// the length without being indexed — recovery appends all-NULL
    /// placeholders for rows that were deleted before the crash.
    pub fn note_append(&mut self, value: &Value, rid: Rid) {
        self.heap_len = self.heap_len.max(rid.0 + 1);
        if !value.is_null() && self.tree.get(value).is_none() {
            self.tree.insert(value.clone(), rid.0);
        }
    }

    /// Charge one root-to-leaf descent against `io`.
    pub fn charge_probe(&self, io: &dyn PageAccessor, key: &Value) {
        for node in self.tree.probe_path(key) {
            io.read(self.file, node as u64);
        }
    }

    /// RID range `[start, end)` of rows whose clustered value lies in
    /// `[lo, hi]`, charging one descent. Returns `None` when no value in
    /// the range exists.
    pub fn rid_range(
        &self,
        io: &dyn PageAccessor,
        lo: &Value,
        hi: &Value,
    ) -> Option<(u64, u64)> {
        self.charge_probe(io, lo);
        let start = self
            .tree
            .range(Bound::Included(lo), Bound::Unbounded)
            .next()
            .map(|(_, _, &rid)| rid)?;
        // First run that starts above hi bounds the range.
        let end = self
            .tree
            .range(Bound::Excluded(hi), Bound::Unbounded)
            .next()
            .map(|(_, _, &rid)| rid)
            .unwrap_or(self.heap_len);
        if start >= end {
            return None;
        }
        Some((start, end))
    }

    /// RID range of exactly one clustered value, charging one descent.
    pub fn rid_range_of_value(&self, io: &dyn PageAccessor, v: &Value) -> Option<(u64, u64)> {
        self.rid_range(io, v, v)
    }

    /// Uncharged variant of [`ClusteredIndex::rid_range`] for planning and
    /// statistics (no measured I/O).
    pub fn rid_range_uncharged(&self, lo: &Value, hi: &Value) -> Option<(u64, u64)> {
        let start = self
            .tree
            .range(Bound::Included(lo), Bound::Unbounded)
            .next()
            .map(|(_, _, &rid)| rid)?;
        let end = self
            .tree
            .range(Bound::Excluded(hi), Bound::Unbounded)
            .next()
            .map(|(_, _, &rid)| rid)
            .unwrap_or(self.heap_len);
        if start >= end {
            None
        } else {
            Some((start, end))
        }
    }

    /// Average tuples per distinct clustered value — the paper's `c_tups`.
    pub fn c_tups(&self) -> f64 {
        if self.tree.is_empty() {
            0.0
        } else {
            self.heap_len as f64 / self.tree.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_storage::{Column, DiskSim, Schema, ValueType};
    use std::sync::Arc;

    fn clustered_heap(disk: &DiskSim) -> HeapFile {
        let schema = Arc::new(Schema::new(vec![
            Column::new("state", ValueType::Str),
            Column::new("city", ValueType::Str),
        ]));
        // 3 MA, 2 MN, 4 NH, 1 OH — already sorted on state.
        let rows: Vec<Vec<Value>> = [
            ("MA", "boston"),
            ("MA", "cambridge"),
            ("MA", "springfield"),
            ("MN", "manchester"),
            ("MN", "st paul"),
            ("NH", "boston"),
            ("NH", "concord"),
            ("NH", "manchester"),
            ("NH", "nashua"),
            ("OH", "toledo"),
        ]
        .iter()
        .map(|(s, c)| vec![Value::str(*s), Value::str(*c)])
        .collect();
        HeapFile::bulk_load(disk, schema, rows, 4).unwrap()
    }

    #[test]
    fn build_records_run_starts() {
        let disk = DiskSim::with_defaults();
        let heap = clustered_heap(&disk);
        let idx = ClusteredIndex::build(&heap, 0, disk.alloc_file(), 4);
        assert_eq!(idx.distinct_values(), 4);
        assert_eq!(
            idx.rid_range_uncharged(&Value::str("MA"), &Value::str("MA")),
            Some((0, 3))
        );
        assert_eq!(
            idx.rid_range_uncharged(&Value::str("NH"), &Value::str("NH")),
            Some((5, 9))
        );
        assert_eq!(
            idx.rid_range_uncharged(&Value::str("OH"), &Value::str("OH")),
            Some((9, 10)),
            "last run extends to heap end"
        );
    }

    #[test]
    fn range_spans_multiple_values() {
        let disk = DiskSim::with_defaults();
        let heap = clustered_heap(&disk);
        let idx = ClusteredIndex::build(&heap, 0, disk.alloc_file(), 4);
        assert_eq!(
            idx.rid_range_uncharged(&Value::str("MA"), &Value::str("MN")),
            Some((0, 5))
        );
        assert_eq!(
            idx.rid_range_uncharged(&Value::str("MB"), &Value::str("NA")),
            Some((3, 5)),
            "bounds between values snap to contained runs"
        );
    }

    #[test]
    fn missing_ranges_return_none() {
        let disk = DiskSim::with_defaults();
        let heap = clustered_heap(&disk);
        let idx = ClusteredIndex::build(&heap, 0, disk.alloc_file(), 4);
        assert_eq!(idx.rid_range_uncharged(&Value::str("ZZ"), &Value::str("ZZ")), None);
        assert_eq!(idx.rid_range_uncharged(&Value::str("MB"), &Value::str("MC")), None);
    }

    #[test]
    fn probes_charge_height_reads() {
        let disk = DiskSim::with_defaults();
        let heap = clustered_heap(&disk);
        let idx = ClusteredIndex::build(&heap, 0, disk.alloc_file(), 4);
        let before = disk.stats();
        let _ = idx.rid_range(disk.as_ref(), &Value::str("MA"), &Value::str("MA"));
        let d = disk.stats().since(&before);
        assert_eq!((d.seeks + d.seq_reads) as usize, idx.height());
    }

    #[test]
    fn c_tups_is_rows_over_distinct() {
        let disk = DiskSim::with_defaults();
        let heap = clustered_heap(&disk);
        let idx = ClusteredIndex::build(&heap, 0, disk.alloc_file(), 4);
        assert!((idx.c_tups() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn note_append_extends_heap_and_indexes_new_values() {
        let disk = DiskSim::with_defaults();
        let heap = clustered_heap(&disk);
        let mut idx = ClusteredIndex::build(&heap, 0, disk.alloc_file(), 4);
        idx.note_append(&Value::str("TX"), Rid(10));
        assert_eq!(idx.distinct_values(), 5);
        assert_eq!(
            idx.rid_range_uncharged(&Value::str("TX"), &Value::str("TX")),
            Some((10, 11))
        );
        // Re-appearing value keeps its original run start.
        idx.note_append(&Value::str("MA"), Rid(11));
        assert_eq!(
            idx.rid_range_uncharged(&Value::str("MA"), &Value::str("MA")).unwrap().0,
            0
        );
    }

    #[test]
    fn restore_tolerates_tombstones_and_tail() {
        let disk = DiskSim::with_defaults();
        let schema = Arc::new(Schema::new(vec![Column::new("k", ValueType::Str)]));
        // Sorted prefix with the whole MN run and the first NH row
        // tombstoned, plus a live tail.
        let mut rows: Vec<Vec<Value>> = [
            "MA", "MA", "MA", "MN", "MN", "NH", "NH", "NH", "NH", "OH",
        ]
        .iter()
        .map(|s| vec![Value::str(*s)])
        .collect();
        rows[3] = vec![Value::Null];
        rows[4] = vec![Value::Null];
        rows[5] = vec![Value::Null];
        rows.push(vec![Value::str("TX")]);
        rows.push(vec![Value::Null]); // deleted tail row
        let heap = HeapFile::bulk_load(&disk, schema, rows, 4).unwrap();
        let idx = ClusteredIndex::restore(&heap, 0, 10, disk.alloc_file(), 4);
        // MA unchanged; NH starts at its first *surviving* row; the NULL
        // rows are never indexed; the tail value is.
        assert_eq!(idx.rid_range_uncharged(&Value::str("MA"), &Value::str("MA")), Some((0, 6)));
        assert_eq!(idx.rid_range_uncharged(&Value::str("NH"), &Value::str("NH")), Some((6, 9)));
        assert_eq!(idx.rid_range_uncharged(&Value::str("TX"), &Value::str("TX")), Some((10, 12)));
        assert_eq!(idx.distinct_values(), 4, "MA NH OH TX");
        assert_eq!(idx.rid_range_uncharged(&Value::Null, &Value::Null), None);
    }

    #[test]
    fn null_appends_grow_length_without_indexing() {
        let disk = DiskSim::with_defaults();
        let heap = clustered_heap(&disk);
        let mut idx = ClusteredIndex::build(&heap, 0, disk.alloc_file(), 4);
        let distinct = idx.distinct_values();
        idx.note_append(&Value::Null, Rid(10));
        assert_eq!(idx.distinct_values(), distinct);
        // The heap end moved: the last run now extends over the
        // placeholder, which holds no matching rows.
        assert_eq!(
            idx.rid_range_uncharged(&Value::str("OH"), &Value::str("OH")),
            Some((9, 11))
        );
    }

    #[test]
    fn many_distinct_values_build_real_tree() {
        let disk = DiskSim::with_defaults();
        let schema = Arc::new(Schema::new(vec![Column::new("k", ValueType::Int)]));
        let rows: Vec<Vec<Value>> = (0..5000i64).map(|i| vec![Value::Int(i / 2)]).collect();
        let heap = HeapFile::bulk_load(&disk, schema, rows, 50).unwrap();
        let idx = ClusteredIndex::build(&heap, 0, disk.alloc_file(), 16);
        assert_eq!(idx.distinct_values(), 2500);
        assert!(idx.height() >= 3);
        assert_eq!(idx.rid_range_uncharged(&Value::Int(100), &Value::Int(100)), Some((200, 202)));
    }
}
