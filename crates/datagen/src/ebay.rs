//! eBay hierarchical catalog generator (paper §7.1.1, "Hierarchical
//! Data").
//!
//! The paper's dataset: 24,000 categories in a hierarchy of up to 6
//! levels, 500–3,000 items per category (43M rows), category median
//! prices uniform in $0–$1M, item prices Gaussian (σ = $100) around the
//! median — "thus, there exists a strong (but not exact) correlation
//! between Price and CATID". Schema:
//!
//! ```text
//! ITEMS(CATID, CAT1, CAT2, CAT3, CAT4, CAT5, CAT6, ItemID, Price)
//! ```
//!
//! This generator reproduces the hierarchy shape (geometric branching to
//! depth 6), the per-category price model, and the category-path string
//! columns, at configurable scale.

use cm_storage::{Column, Row, Schema, Value, ValueType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr_normal::sample_normal;
use std::sync::Arc;

/// Column index of `CATID`.
pub const COL_CATID: usize = 0;
/// Column index of `CAT1` (levels 1–6 are columns 1–6).
pub const COL_CAT1: usize = 1;
/// Column index of `CAT5` (used by Experiment 4's `CAT5 = X` query).
pub const COL_CAT5: usize = 5;
/// Column index of `ItemID`.
pub const COL_ITEMID: usize = 7;
/// Column index of `Price`.
pub const COL_PRICE: usize = 8;

/// Scale and randomness knobs.
#[derive(Debug, Clone, Copy)]
pub struct EbayConfig {
    /// Number of leaf categories (paper: 24,000).
    pub categories: usize,
    /// Minimum items per category (paper: 500).
    pub min_items: usize,
    /// Maximum items per category (paper: 3,000).
    pub max_items: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EbayConfig {
    fn default() -> Self {
        // ~2,400 categories × ~20 items ≈ 48k rows: the paper's shape at
        // 1/1000 scale, sized for the simulated disk.
        EbayConfig { categories: 2_400, min_items: 8, max_items: 32, seed: 0xEBA1 }
    }
}

/// A generated catalog.
pub struct EbayData {
    /// `ITEMS` schema.
    pub schema: Arc<Schema>,
    /// Item rows (unclustered; cluster on load).
    pub rows: Vec<Row>,
    /// Per-category path names, indexed by CATID (level → name; `None`
    /// below the category's depth).
    pub category_paths: Vec<[Option<Arc<str>>; 6]>,
    /// Per-category price medians, indexed by CATID.
    pub medians: Vec<i64>,
    /// Next unused ItemID (continuation point for insert batches).
    pub next_item_id: i64,
    config: EbayConfig,
}

/// The `ITEMS` schema.
pub fn schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![
        Column::new("CATID", ValueType::Int),
        Column::new("CAT1", ValueType::Str),
        Column::new("CAT2", ValueType::Str),
        Column::new("CAT3", ValueType::Str),
        Column::new("CAT4", ValueType::Str),
        Column::new("CAT5", ValueType::Str),
        Column::new("CAT6", ValueType::Str),
        Column::new("ItemID", ValueType::Int),
        Column::new("Price", ValueType::Int),
    ]))
}

/// Branching factors that take one root to ~24 leaves over 6 levels —
/// scaled by the category count to keep the hierarchy shape.
const BRANCHING: [usize; 6] = [30, 5, 4, 4, 3, 2];

/// Deterministic category-path names: level-tagged numeric segments
/// ("antiques → architectural → hardware → locks & keys" becomes
/// "L1-00007 → L2-00003 → …"), preserving exactly what the experiments
/// use the names for: equality predicates per level whose values map to
/// a controlled number of CATIDs. Level cardinalities grow with depth
/// (CAT1 is ~30 top groups; CAT5/CAT6 names repeat across a handful of
/// categories, like "locks & keys" appearing under many parents), and a
/// minority of CAT5 names are deliberately hot so Experiment 4 can pick
/// predicate values spanning a wide range of `c_per_u` (the paper tests
/// values with c_per_u from 4 to 145).
fn path_of(catid: usize, categories: usize) -> [Option<Arc<str>>; 6] {
    // Depth: most categories are deep, some stop early (max 6 levels).
    let depth = 3 + (catid % 4); // 3..=6
    let mut segments: [Option<Arc<str>>; 6] = Default::default();
    for (lvl, seg) in segments.iter_mut().enumerate().take(depth.min(6)) {
        // Effective distinct names at this level.
        let ecard = match lvl {
            0 => BRANCHING[0].min(categories),                 // ~30 groups
            1 => (categories / 16).clamp(1, 150),              // coarse
            2 => (categories / 8).max(1),                      // ~8 catids/name
            3 => (categories / 6).max(1),
            4 => (categories / 4).max(1),                      // ~4 catids/name
            _ => (categories / 2).max(1),                      // near-unique
        };
        let r = catid % ecard;
        let id = if lvl == 4 && r < ecard / 4 {
            // Hot CAT5 band with *graded* coverage: after a scattering
            // permutation, name `sqrt(r')` covers the quadratic band
            // [k^2, (k+1)^2), so hot names span 4 to ~150 *scattered*
            // categories — Experiment 4 needs predicate values with
            // c_per_u across exactly that range (the paper tests 4..145).
            let band = (ecard / 4).max(1);
            let rp = (r * 7919) % band;
            1_000_000 + (rp as f64).sqrt() as usize
        } else {
            r
        };
        *seg = Some(Arc::from(format!("L{}-{:05}", lvl + 1, id)));
    }
    segments
}

/// Generate the catalog.
pub fn ebay(config: EbayConfig) -> EbayData {
    assert!(config.categories > 0 && config.min_items <= config.max_items);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let schema = schema();
    let mut category_paths = Vec::with_capacity(config.categories);
    let mut medians = Vec::with_capacity(config.categories);
    for catid in 0..config.categories {
        category_paths.push(path_of(catid, config.categories));
        medians.push(rng.gen_range(0..1_000_000i64));
    }
    let mut rows = Vec::new();
    let mut item_id = 0i64;
    for catid in 0..config.categories {
        let n = rng.gen_range(config.min_items..=config.max_items);
        for _ in 0..n {
            rows.push(make_row(&mut rng, catid, &category_paths, &medians, item_id));
            item_id += 1;
        }
    }
    EbayData { schema, rows, category_paths, medians, next_item_id: item_id, config }
}

fn make_row(
    rng: &mut StdRng,
    catid: usize,
    paths: &[[Option<Arc<str>>; 6]],
    medians: &[i64],
    item_id: i64,
) -> Row {
    let price = (medians[catid] as f64 + sample_normal(rng) * 100.0).max(0.0) as i64;
    let mut row = Vec::with_capacity(9);
    row.push(Value::Int(catid as i64));
    for seg in &paths[catid] {
        row.push(match seg {
            Some(s) => Value::Str(s.clone()),
            None => Value::Null,
        });
    }
    row.push(Value::Int(item_id));
    row.push(Value::Int(price));
    row
}

impl EbayData {
    /// Generate a batch of `n` fresh insert rows (random categories, new
    /// ItemIDs) for the maintenance experiments.
    pub fn insert_batch(&mut self, n: usize, seed: u64) -> Vec<Row> {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ seed);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let catid = rng.gen_range(0..self.category_paths.len());
            out.push(make_row(
                &mut rng,
                catid,
                &self.category_paths,
                &self.medians,
                self.next_item_id,
            ));
            self.next_item_id += 1;
        }
        out
    }

    /// A `(column, value)` pair predicating one hierarchy level, for the
    /// Experiment 3 mixed workload (`SELECT AVG(Price) ... WHERE CATX=X`).
    pub fn random_cat_predicate(&self, seed: u64) -> (usize, Value) {
        let mut rng = StdRng::seed_from_u64(seed);
        loop {
            let catid = rng.gen_range(0..self.category_paths.len());
            let level = rng.gen_range(0..6usize);
            if let Some(name) = &self.category_paths[catid][level] {
                return (COL_CAT1 + level, Value::Str(name.clone()));
            }
        }
    }
}

/// Box–Muller standard normal, local so the crate needs no extra
/// dependency features.
mod rand_distr_normal {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// One standard-normal sample.
    pub fn sample_normal(rng: &mut StdRng) -> f64 {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_stats::correlation_stats;

    fn small() -> EbayData {
        ebay(EbayConfig { categories: 300, min_items: 5, max_items: 15, seed: 7 })
    }

    #[test]
    fn rows_conform_to_schema() {
        let d = small();
        for row in d.rows.iter().take(500) {
            d.schema.validate(row).unwrap();
        }
        assert!(d.rows.len() >= 300 * 5);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = ebay(EbayConfig { categories: 50, min_items: 2, max_items: 4, seed: 1 });
        let b = ebay(EbayConfig { categories: 50, min_items: 2, max_items: 4, seed: 1 });
        assert_eq!(a.rows, b.rows);
        let c = ebay(EbayConfig { categories: 50, min_items: 2, max_items: 4, seed: 2 });
        assert_ne!(a.rows, c.rows);
    }

    #[test]
    fn price_catid_soft_fd_holds() {
        // The paper's premise: price strongly (softly) determines CATID.
        // Bucket price by 4096 and measure c_per_u against CATID.
        let d = small();
        let bucketed: Vec<(Value, Value)> = d
            .rows
            .iter()
            .map(|r| {
                (Value::Int(r[COL_PRICE].as_int().unwrap() / 4096), r[COL_CATID].clone())
            })
            .collect();
        let s = correlation_stats(bucketed.iter().map(|(u, c)| (u, c)));
        // 300 categories over 1M prices: ~1.2 categories per 4096-bucket
        // in expectation; far below the ~300 an uncorrelated column gives.
        assert!(s.c_per_u < 6.0, "c_per_u {}", s.c_per_u);
    }

    #[test]
    fn cat_levels_have_decreasing_cardinality() {
        let d = small();
        let distinct = |col: usize| {
            let mut set = std::collections::HashSet::new();
            for r in &d.rows {
                if let Some(s) = r[col].as_str() {
                    set.insert(s.to_string());
                }
            }
            set.len()
        };
        let c1 = distinct(COL_CAT1);
        let c3 = distinct(3);
        assert!(c1 < c3, "CAT1 ({c1}) coarser than CAT3 ({c3})");
        assert!(c1 <= 30);
    }

    #[test]
    fn item_ids_unique_and_dense() {
        let d = small();
        let mut ids: Vec<i64> =
            d.rows.iter().map(|r| r[COL_ITEMID].as_int().unwrap()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), d.rows.len());
        assert_eq!(ids[0], 0);
        assert_eq!(*ids.last().unwrap(), d.rows.len() as i64 - 1);
    }

    #[test]
    fn insert_batches_continue_item_ids() {
        let mut d = small();
        let n0 = d.next_item_id;
        let batch = d.insert_batch(100, 42);
        assert_eq!(batch.len(), 100);
        assert_eq!(batch[0][COL_ITEMID], Value::Int(n0));
        assert_eq!(d.next_item_id, n0 + 100);
        for row in &batch {
            d.schema.validate(row).unwrap();
        }
    }

    #[test]
    fn cat_predicates_reference_real_values() {
        let d = small();
        for seed in 0..20 {
            let (col, v) = d.random_cat_predicate(seed);
            assert!((COL_CAT1..=6).contains(&col));
            assert!(
                d.rows.iter().any(|r| r[col] == v),
                "predicate ({col}, {v}) matches no rows"
            );
        }
    }

    #[test]
    fn prices_are_nonnegative() {
        let d = small();
        assert!(d.rows.iter().all(|r| r[COL_PRICE].as_int().unwrap() >= 0));
    }
}
