//! # cm-datagen
//!
//! Deterministic generators for the paper's three evaluation datasets
//! (§7.1.1). The originals (43M-row eBay listing dump, TPC-H SF3, the
//! SDSS skyserver) are reproduced as synthetic equivalents with the same
//! schemas, value domains, and — crucially — the same *correlation
//! structure*, at a configurable scale suitable for the simulated disk:
//!
//! * [`ebay()`](ebay::ebay) — 6-level category hierarchy; `Price` is Gaussian around a
//!   per-category median, giving the strong-but-soft `Price → CATID` FD
//!   of Experiments 1–4.
//! * [`tpch_lineitem()`](tpch::tpch_lineitem) — the `lineitem` table; `receiptdate` lags `shipdate` by a
//!   few common gaps (the §3.3 correlation) and `suppkey` is moderately
//!   correlated with `partkey` (each part has few suppliers).
//! * [`sdss()`](sdss::sdss) — a `PhotoTag`-like sky table with 39 queryable attributes
//!   in three correlation families (sky-position attributes, brightness
//!   attributes, independent attributes), reproducing the structure that
//!   makes Figure 2's per-clustering speedup profile and Experiment 5's
//!   `(ra, dec) → objID` composite correlation.
//!
//! Every generator takes a seed and is fully deterministic, so all
//! experiment outputs are reproducible bit-for-bit.

pub mod ebay;
pub mod sdss;
pub mod tpch;

pub use ebay::{ebay, EbayConfig, EbayData};
pub use sdss::{sdss, SdssConfig, SdssData};
pub use tpch::{tpch_lineitem, TpchConfig, TpchData};
