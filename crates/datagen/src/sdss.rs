//! SDSS sky-survey generator (paper §7.1.1, "SDSS Data").
//!
//! The paper uses the desktop SkyServer `PhotoObj` (446 attributes, 200k
//! tuples) and a widened `PhotoTag` copy. Its experiments need three
//! statistical facts, all reproduced here:
//!
//! 1. **Figure 2**: 39 queryable attributes whose pairwise correlations
//!    cluster into families, so that clustering the table on one
//!    attribute accelerates queries on its correlated family (fieldID is
//!    "highly correlated with 12 attributes"). We generate a
//!    *sky-position* family (13 attributes derived from telescope scan
//!    order), a *brightness* family (11 attributes driven by a luminosity
//!    latent), and 15 independent attributes.
//! 2. **Experiment 5 / Table 6**: `objID` is assigned in scan order
//!    (stripes by declination, right ascension within a stripe), so the
//!    *pair* `(ra, dec)` determines `objID`'s neighborhood tightly while
//!    each coordinate alone is weak — `ra` scatters across every stripe.
//! 3. **Table 3/4/5 (SX6)**: `fieldID` (251 values) is perfectly
//!    correlated with `objID`; `mode`/`type` are few-valued; `psfMag_g`
//!    is near-unique.

use cm_storage::{Column, Row, Schema, Value, ValueType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Column index of `objID` (the default clustered attribute).
pub const COL_OBJID: usize = 0;
/// Column index of `ra` (right ascension, degrees).
pub const COL_RA: usize = 1;
/// Column index of `dec` (declination, degrees).
pub const COL_DEC: usize = 2;
/// Column index of `fieldID`.
pub const COL_FIELDID: usize = 3;
/// Column index of `mode` (3 values).
pub const COL_MODE: usize = 14;
/// Column index of `type` (5 values).
pub const COL_TYPE: usize = 15;
/// Column index of `psfMag_g` (near-unique float).
pub const COL_PSFMAG_G: usize = 16;
/// Column index of `g` (brightness magnitude, for the Q2 variant).
pub const COL_G: usize = 25;
/// Column index of `rho`.
pub const COL_RHO: usize = 26;

/// Scale and randomness knobs.
#[derive(Debug, Clone, Copy)]
pub struct SdssConfig {
    /// Number of objects (paper: 200k base PhotoObj).
    pub rows: usize,
    /// Number of telescope fields (paper: fieldID has 251 values).
    pub fields: usize,
    /// Declination stripes in the scan pattern.
    pub stripes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SdssConfig {
    fn default() -> Self {
        SdssConfig { rows: 200_000, fields: 251, stripes: 20, seed: 0x5D55 }
    }
}

/// A generated sky table.
pub struct SdssData {
    /// The PhotoTag-like schema.
    pub schema: Arc<Schema>,
    /// Rows in `objID` order (scan order; already clustered on objID).
    pub rows: Vec<Row>,
    /// The 39 queryable column indices (everything except `objID`),
    /// grouped position-family first, then brightness, then independent.
    pub query_attrs: Vec<usize>,
}

/// Names of the position-family attributes (beyond ra/dec/fieldID) with
/// their cardinalities: each is a monotone function of scan position plus
/// mild noise — mutually correlated, like SDSS's run/field bookkeeping.
const POSITION_ATTRS: [(&str, i64); 10] = [
    ("run", 30),
    ("rerun", 10),
    ("camcol", 6),
    ("field", 2000),
    ("mjd", 500),
    ("stripe", 25),
    ("strip", 50),
    ("segment", 120),
    ("tile", 400),
    ("chunk", 80),
];

/// Brightness-family float attributes (driven by a per-object luminosity
/// latent, mutually correlated, independent of sky position). `psfMag_g`,
/// `g`, and `rho` are part of this family.
const BRIGHTNESS_ATTRS: [&str; 8] = [
    "psfMag_u", "psfMag_r", "psfMag_i", "psfMag_z", "petroMag_r", "petroRad_r", "modelMag_r",
    "fiberMag_r",
];

/// Independent attributes with their cardinalities (0 = continuous
/// float): uncorrelated with everything, so clustering on them helps only
/// their own queries.
const INDEPENDENT_ATTRS: [(&str, i64); 13] = [
    ("status", 16),
    ("flags", 1024),
    ("nChild", 12),
    ("priTarget", 64),
    ("insideMask", 8),
    ("probPSF", 0),
    ("extinction_r", 0),
    ("mCr4_g", 0),
    ("texture", 0),
    ("lnLStar", 0),
    ("lnLExp", 0),
    ("fracDeV", 0),
    ("sky_u", 0),
];

/// The PhotoTag-like schema: objID + 39 queryable attributes.
pub fn schema() -> Arc<Schema> {
    let mut cols = vec![
        Column::new("objID", ValueType::Int),
        Column::new("ra", ValueType::Float),
        Column::new("dec", ValueType::Float),
        Column::new("fieldID", ValueType::Int),
    ];
    for (name, _) in POSITION_ATTRS {
        cols.push(Column::new(name, ValueType::Int));
    }
    cols.push(Column::new("mode", ValueType::Int));
    cols.push(Column::new("type", ValueType::Int));
    cols.push(Column::new("psfMag_g", ValueType::Float));
    for name in BRIGHTNESS_ATTRS {
        cols.push(Column::new(name, ValueType::Float));
    }
    cols.push(Column::new("g", ValueType::Float));
    cols.push(Column::new("rho", ValueType::Float));
    for (name, card) in INDEPENDENT_ATTRS {
        cols.push(Column::new(
            name,
            if card == 0 { ValueType::Float } else { ValueType::Int },
        ));
    }
    Arc::new(Schema::new(cols))
}

/// Generate the sky table.
pub fn sdss(config: SdssConfig) -> SdssData {
    assert!(config.rows > 0 && config.fields > 0 && config.stripes > 0);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let schema = schema();
    let per_stripe = config.rows.div_ceil(config.stripes);
    let mut rows = Vec::with_capacity(config.rows);
    for obj in 0..config.rows {
        // Telescope scan order: stripe by declination, then right
        // ascension within the stripe. objID IS the scan position.
        let stripe = obj / per_stripe;
        let within = obj % per_stripe;
        let p = obj as f64 / config.rows as f64; // global scan fraction
        let ra = 360.0 * (within as f64 / per_stripe as f64)
            + rng.gen_range(-0.01..0.01f64);
        let dec = -10.0 + stripe as f64 + rng.gen_range(0.0..1.0f64);
        // Luminosity latent, independent of position.
        let lum: f64 = rng.gen_range(0.0..1.0);

        let mut row = Vec::with_capacity(schema.arity());
        row.push(Value::Int(obj as i64));
        row.push(Value::float(ra.clamp(0.0, 360.0)));
        row.push(Value::float(dec));
        row.push(Value::Int(((p * config.fields as f64) as i64).min(config.fields as i64 - 1)));
        for (_, card) in POSITION_ATTRS {
            // Monotone in scan position with ±1 jitter: highly correlated
            // with objID and with each other.
            let base = (p * card as f64) as i64;
            let jitter = rng.gen_range(-1..=1i64);
            row.push(Value::Int((base + jitter).clamp(0, card - 1)));
        }
        row.push(Value::Int(rng.gen_range(1..=3i64))); // mode
        row.push(Value::Int(rng.gen_range(0..5i64) + if rng.gen_bool(0.3) { 1 } else { 0 })); // type, skewed
        row.push(Value::float(14.0 + 10.0 * lum + rng.gen_range(-0.05..0.05)));
        for i in 0..BRIGHTNESS_ATTRS.len() {
            let spread = 0.2 + 0.1 * i as f64;
            row.push(Value::float(12.0 + 12.0 * lum + rng.gen_range(-spread..spread)));
        }
        row.push(Value::float(14.0 + 10.0 * lum + rng.gen_range(-0.3..0.3))); // g
        row.push(Value::float(8.0 + 4.0 * lum + rng.gen_range(-0.2..0.2))); // rho
        for (_, card) in INDEPENDENT_ATTRS {
            if card == 0 {
                row.push(Value::float(rng.gen_range(0.0..100.0)));
            } else {
                row.push(Value::Int(rng.gen_range(0..card)));
            }
        }
        rows.push(row);
    }
    let query_attrs: Vec<usize> = (1..schema.arity()).collect();
    SdssData { schema, rows, query_attrs }
}

impl SdssData {
    /// A `[lo, hi]` range over column `col` covering approximately `frac`
    /// of the rows, positioned deterministically by `seed` — the "1%
    /// selectivity predicate" of the Figure 2 benchmark.
    pub fn selectivity_range(&self, col: usize, frac: f64, seed: u64) -> (Value, Value) {
        let mut vals: Vec<&Value> = self.rows.iter().map(|r| &r[col]).collect();
        vals.sort();
        let window = ((self.rows.len() as f64 * frac) as usize).max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let start = rng.gen_range(0..vals.len().saturating_sub(window).max(1));
        (vals[start].clone(), vals[(start + window - 1).min(vals.len() - 1)].clone())
    }

    /// Index of a column by name.
    pub fn col(&self, name: &str) -> usize {
        self.schema.col_index(name).expect("known column")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_stats::{composite_correlation_stats, correlation_stats};

    fn small() -> SdssData {
        sdss(SdssConfig { rows: 20_000, fields: 251, stripes: 20, seed: 11 })
    }

    #[test]
    fn schema_has_39_query_attrs() {
        let d = small();
        assert_eq!(d.query_attrs.len(), 39);
        assert_eq!(d.schema.arity(), 40);
        for row in d.rows.iter().take(100) {
            d.schema.validate(row).unwrap();
        }
    }

    #[test]
    fn named_columns_resolve() {
        let d = small();
        assert_eq!(d.col("objID"), COL_OBJID);
        assert_eq!(d.col("ra"), COL_RA);
        assert_eq!(d.col("dec"), COL_DEC);
        assert_eq!(d.col("fieldID"), COL_FIELDID);
        assert_eq!(d.col("mode"), COL_MODE);
        assert_eq!(d.col("type"), COL_TYPE);
        assert_eq!(d.col("psfMag_g"), COL_PSFMAG_G);
        assert_eq!(d.col("g"), COL_G);
        assert_eq!(d.col("rho"), COL_RHO);
    }

    #[test]
    fn fieldid_perfectly_determined_by_objid_order() {
        let d = small();
        // fieldID is monotone in objID: each fieldID is one contiguous
        // run — c_per_u of (fieldID → coarse objID block) is tiny.
        let blocks: Vec<(Value, Value)> = d
            .rows
            .iter()
            .map(|r| {
                (r[COL_FIELDID].clone(), Value::Int(r[COL_OBJID].as_int().unwrap() / 500))
            })
            .collect();
        let s = correlation_stats(blocks.iter().map(|(u, c)| (u, c)));
        assert!(s.c_per_u < 2.0, "c_per_u {}", s.c_per_u);
    }

    #[test]
    fn ra_dec_pair_beats_each_alone() {
        // Experiment 5's premise, measured on coarse buckets of each.
        let d = small();
        let block = |r: &Row| Value::Int(r[COL_OBJID].as_int().unwrap() / 200);
        let rab = |r: &Row| (r[COL_RA].as_float().unwrap() / 5.0).floor() as i64;
        let decb = |r: &Row| (r[COL_DEC].as_float().unwrap() / 0.25).floor() as i64;
        let ra_only =
            composite_correlation_stats(d.rows.iter().map(|r| (rab(r), block(r))));
        let dec_only =
            composite_correlation_stats(d.rows.iter().map(|r| (decb(r), block(r))));
        let pair = composite_correlation_stats(
            d.rows.iter().map(|r| ((rab(r), decb(r)), block(r))),
        );
        assert!(
            pair.c_per_u < ra_only.c_per_u / 5.0,
            "pair {} vs ra {}",
            pair.c_per_u,
            ra_only.c_per_u
        );
        assert!(pair.c_per_u < dec_only.c_per_u, "pair {} vs dec {}", pair.c_per_u, dec_only.c_per_u);
    }

    #[test]
    fn position_family_mutually_correlated_brightness_not() {
        let d = small();
        let run = d.col("run");
        let mjd = d.col("mjd");
        let psf = COL_PSFMAG_G;
        let s_pos = correlation_stats(d.rows.iter().map(|r| (&r[mjd], &r[run])));
        // mjd (500 values) maps to ~1-2 runs each.
        assert!(s_pos.c_per_u < 4.0, "position family c_per_u {}", s_pos.c_per_u);
        // psfMag_g bucketed coarsely still scatters across runs.
        let b: Vec<(Value, Value)> = d
            .rows
            .iter()
            .map(|r| {
                (
                    Value::Int((r[psf].as_float().unwrap() * 2.0) as i64),
                    r[run].clone(),
                )
            })
            .collect();
        let s_bright = correlation_stats(b.iter().map(|(u, c)| (u, c)));
        assert!(s_bright.c_per_u > 10.0, "brightness vs run c_per_u {}", s_bright.c_per_u);
    }

    #[test]
    fn brightness_family_mutually_correlated() {
        let d = small();
        let g = COL_G;
        let psf = COL_PSFMAG_G;
        // Bucket both to ~0.5-mag bins; g-bin maps to few psf-bins.
        let b: Vec<(Value, Value)> = d
            .rows
            .iter()
            .map(|r| {
                (
                    Value::Int((r[g].as_float().unwrap() * 2.0) as i64),
                    Value::Int((r[psf].as_float().unwrap() * 2.0) as i64),
                )
            })
            .collect();
        let s = correlation_stats(b.iter().map(|(u, c)| (u, c)));
        assert!(s.c_per_u < 4.0, "c_per_u {}", s.c_per_u);
    }

    #[test]
    fn few_valued_attrs_have_expected_cardinality() {
        let d = small();
        let distinct = |col: usize| {
            let mut s = std::collections::HashSet::new();
            for r in &d.rows {
                s.insert(r[col].clone());
            }
            s.len()
        };
        assert_eq!(distinct(COL_MODE), 3);
        assert!(distinct(COL_TYPE) <= 6);
        assert_eq!(distinct(COL_FIELDID), 251);
        assert!(distinct(COL_PSFMAG_G) > d.rows.len() / 2, "psfMag_g near-unique");
    }

    #[test]
    fn selectivity_range_hits_target() {
        let d = small();
        for (col, seed) in [(COL_PSFMAG_G, 1u64), (d.col("field"), 2), (COL_RA, 3)] {
            let (lo, hi) = d.selectivity_range(col, 0.01, seed);
            let hits = d
                .rows
                .iter()
                .filter(|r| r[col] >= lo && r[col] <= hi)
                .count() as f64
                / d.rows.len() as f64;
            assert!((0.005..0.05).contains(&hits), "col {col}: selectivity {hits}");
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = sdss(SdssConfig { rows: 500, fields: 50, stripes: 5, seed: 2 });
        let b = sdss(SdssConfig { rows: 500, fields: 50, stripes: 5, seed: 2 });
        assert_eq!(a.rows, b.rows);
    }
}
