//! TPC-H `lineitem` generator (paper §7.1.1, "TPC-H Data").
//!
//! The paper uses `lineitem` at scale 3 (~18M rows of 136 bytes) and
//! exploits two correlations (§3.3, Figure 1):
//!
//! * `shipdate` ↔ `receiptdate`: "most products are shipped 2, 4, or 5
//!   days before they are received" — a tight soft FD;
//! * `suppkey` ↔ `partkey`: "each supplier only supplies certain parts" —
//!   a moderate correlation (TPC-H assigns each part 4 suppliers).
//!
//! Figure 3's query (`shipdate IN (...)` with the table clustered on
//! `receiptdate` vs. on the primary key) runs against this data.

use cm_storage::{Column, Row, Schema, Value, ValueType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Column index of `orderkey`.
pub const COL_ORDERKEY: usize = 0;
/// Column index of `linenumber`.
pub const COL_LINENUMBER: usize = 1;
/// Column index of `partkey`.
pub const COL_PARTKEY: usize = 2;
/// Column index of `suppkey`.
pub const COL_SUPPKEY: usize = 3;
/// Column index of `quantity`.
pub const COL_QUANTITY: usize = 4;
/// Column index of `extendedprice`.
pub const COL_EXTENDEDPRICE: usize = 5;
/// Column index of `discount`.
pub const COL_DISCOUNT: usize = 6;
/// Column index of `tax`.
pub const COL_TAX: usize = 7;
/// Column index of `shipdate`.
pub const COL_SHIPDATE: usize = 8;
/// Column index of `commitdate`.
pub const COL_COMMITDATE: usize = 9;
/// Column index of `receiptdate`.
pub const COL_RECEIPTDATE: usize = 10;
/// Column index of `shipmode`.
pub const COL_SHIPMODE: usize = 11;
/// Column index of `returnflag`.
pub const COL_RETURNFLAG: usize = 12;

/// First order date (days since epoch; 1992-01-01).
pub const DATE_LO: i32 = 8036;
/// Span of order dates in days (~7 years, as in TPC-H).
pub const DATE_SPAN: i32 = 2526;

/// Scale and randomness knobs.
#[derive(Debug, Clone, Copy)]
pub struct TpchConfig {
    /// Approximate number of lineitem rows (paper: ~18M at SF3).
    pub rows: usize,
    /// Number of parts (SF3: 600k).
    pub parts: i64,
    /// Number of suppliers (SF3: 30k).
    pub suppliers: i64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig { rows: 300_000, parts: 10_000, suppliers: 500, seed: 0x79C8 }
    }
}

/// A generated lineitem table.
#[derive(Clone)]
pub struct TpchData {
    /// `LINEITEM` schema.
    pub schema: Arc<Schema>,
    /// Rows in orderkey order (the "clustered on primary key" layout;
    /// re-cluster on receiptdate for the correlated experiments).
    pub rows: Vec<Row>,
}

/// The `LINEITEM` schema (the 13 attributes the experiments touch).
pub fn schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![
        Column::new("orderkey", ValueType::Int),
        Column::new("linenumber", ValueType::Int),
        Column::new("partkey", ValueType::Int),
        Column::new("suppkey", ValueType::Int),
        Column::new("quantity", ValueType::Int),
        Column::new("extendedprice", ValueType::Float),
        Column::new("discount", ValueType::Float),
        Column::new("tax", ValueType::Float),
        Column::new("shipdate", ValueType::Date),
        Column::new("commitdate", ValueType::Date),
        Column::new("receiptdate", ValueType::Date),
        Column::new("shipmode", ValueType::Str),
        Column::new("returnflag", ValueType::Str),
    ]))
}

const SHIP_MODES: [&str; 7] = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"];
const RETURN_FLAGS: [&str; 3] = ["A", "N", "R"];

/// Generate the lineitem table.
pub fn tpch_lineitem(config: TpchConfig) -> TpchData {
    assert!(config.parts > 0 && config.suppliers > 0);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let schema = schema();
    let mut rows = Vec::with_capacity(config.rows);
    let mut orderkey = 0i64;
    while rows.len() < config.rows {
        orderkey += 1;
        let orderdate = DATE_LO + rng.gen_range(0..DATE_SPAN);
        let lines = rng.gen_range(1..=7i64);
        for linenumber in 1..=lines {
            if rows.len() >= config.rows {
                break;
            }
            let partkey = rng.gen_range(0..config.parts);
            // TPC-H: each part is supplied by 4 suppliers, deterministic
            // in partkey — the moderate suppkey↔partkey correlation of
            // Figure 1 rows 1–2.
            let supp_slot = rng.gen_range(0..4i64);
            let suppkey =
                (partkey + supp_slot * (config.suppliers / 4).max(1)) % config.suppliers;
            let shipdate = orderdate + rng.gen_range(1..=121);
            let commitdate = orderdate + rng.gen_range(30..=90);
            // §3.3: receipt lags ship by a few common gaps.
            let gap = match rng.gen_range(0..10) {
                0..=3 => 2,
                4..=6 => 4,
                7..=8 => 5,
                _ => rng.gen_range(1..=30),
            };
            let receiptdate = shipdate + gap;
            let quantity = rng.gen_range(1..=50i64);
            let price_per_unit = 900.0 + (partkey % 2000) as f64;
            rows.push(vec![
                Value::Int(orderkey),
                Value::Int(linenumber),
                Value::Int(partkey),
                Value::Int(suppkey),
                Value::Int(quantity),
                Value::float(quantity as f64 * price_per_unit),
                Value::float(f64::from(rng.gen_range(0..=10u32)) / 100.0),
                Value::float(f64::from(rng.gen_range(0..=8u32)) / 100.0),
                Value::Date(shipdate),
                Value::Date(commitdate),
                Value::Date(receiptdate),
                Value::str(SHIP_MODES[rng.gen_range(0..SHIP_MODES.len())]),
                Value::str(RETURN_FLAGS[rng.gen_range(0..RETURN_FLAGS.len())]),
            ]);
        }
    }
    TpchData { schema, rows }
}

impl TpchData {
    /// `n` distinct shipdate values present in the data (for the Figure 3
    /// `shipdate IN (...)` query), deterministically sampled.
    pub fn random_shipdates(&self, n: usize, seed: u64) -> Vec<Value> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = std::collections::BTreeSet::new();
        while out.len() < n {
            let row = &self.rows[rng.gen_range(0..self.rows.len())];
            out.insert(row[COL_SHIPDATE].as_date().unwrap());
        }
        out.into_iter().map(Value::Date).collect()
    }

    /// `n` fresh insertable rows resampled from the generated
    /// distribution (preserving the shipdate↔receiptdate and
    /// partkey↔suppkey correlations), deterministic in `seed`. Used by
    /// maintenance and mixed-workload experiments.
    pub fn insert_batch(&self, n: usize, seed: u64) -> Vec<Row> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7C9);
        (0..n)
            .map(|_| self.rows[rng.gen_range(0..self.rows.len())].clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_stats::correlation_stats;

    fn small() -> TpchData {
        tpch_lineitem(TpchConfig { rows: 20_000, parts: 2_000, suppliers: 100, seed: 3 })
    }

    #[test]
    fn rows_conform_and_count() {
        let d = small();
        assert_eq!(d.rows.len(), 20_000);
        for row in d.rows.iter().take(200) {
            d.schema.validate(row).unwrap();
        }
    }

    #[test]
    fn shipdate_receiptdate_tightly_correlated() {
        let d = small();
        let s = correlation_stats(
            d.rows.iter().map(|r| (&r[COL_SHIPDATE], &r[COL_RECEIPTDATE])),
        );
        // ~90% of gaps come from {2, 4, 5}: each shipdate co-occurs with
        // only a handful of receiptdates.
        assert!(s.c_per_u < 8.0, "c_per_u {}", s.c_per_u);
        // Receipt strictly after ship.
        for r in d.rows.iter().take(1000) {
            assert!(r[COL_RECEIPTDATE].as_date() > r[COL_SHIPDATE].as_date());
        }
    }

    #[test]
    fn suppkey_partkey_moderately_correlated() {
        let d = small();
        let s = correlation_stats(
            d.rows.iter().map(|r| (&r[COL_PARTKEY], &r[COL_SUPPKEY])),
        );
        // Each part sees at most 4 suppliers — far below the 100 an
        // uncorrelated pair would approach.
        assert!(s.c_per_u <= 4.0, "c_per_u {}", s.c_per_u);
        assert!(s.c_per_u > 1.0, "but more than one supplier per part");
    }

    #[test]
    fn shipdate_uncorrelated_with_orderkey_locality() {
        // Orders arrive in key order but ship dates scatter over ~4
        // months: a given shipdate maps to many orderkeys.
        let d = small();
        let s = correlation_stats(
            d.rows.iter().map(|r| (&r[COL_SHIPDATE], &r[COL_ORDERKEY])),
        );
        assert!(s.c_per_u > 3.0, "c_per_u {}", s.c_per_u);
    }

    #[test]
    fn orders_have_1_to_7_lines() {
        let d = small();
        let mut counts = std::collections::HashMap::new();
        for r in &d.rows {
            *counts.entry(r[COL_ORDERKEY].as_int().unwrap()).or_insert(0u32) += 1;
        }
        assert!(counts.values().all(|&c| (1..=7).contains(&c)));
    }

    #[test]
    fn random_shipdates_are_distinct_and_present() {
        let d = small();
        let dates = d.random_shipdates(20, 9);
        assert_eq!(dates.len(), 20);
        let set: std::collections::HashSet<_> = dates.iter().collect();
        assert_eq!(set.len(), 20);
        for v in &dates {
            assert!(d.rows.iter().any(|r| &r[COL_SHIPDATE] == v));
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = tpch_lineitem(TpchConfig { rows: 1000, parts: 100, suppliers: 20, seed: 5 });
        let b = tpch_lineitem(TpchConfig { rows: 1000, parts: 100, suppliers: 20, seed: 5 });
        assert_eq!(a.rows, b.rows);
    }
}
