//! Host crate for the runnable examples in `/examples`.
//!
//! Run them with, e.g.:
//!
//! ```text
//! cargo run --release -p examples-host --example quickstart
//! cargo run --release -p examples-host --example ebay_catalog
//! cargo run --release -p examples-host --example sdss_sky_survey
//! cargo run --release -p examples-host --example tpch_warehouse
//! ```
//!
//! The crate docs below are the repository README verbatim, so its
//! Quickstart snippet compiles and runs under `cargo test` as a
//! doc-test.
#![doc = include_str!("../../../README.md")]
