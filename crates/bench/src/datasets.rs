//! Benchmark-scale dataset builders shared across experiments.
//!
//! Every builder takes a [`BenchScale`] so integration tests can smoke-run
//! experiments in milliseconds while `--release` binaries run the full
//! laptop-scale configuration.

use cm_datagen::{
    ebay, sdss, tpch_lineitem, EbayConfig, EbayData, SdssConfig, SdssData, TpchConfig, TpchData,
};
use cm_query::Table;
use cm_storage::DiskSim;
use std::sync::Arc;

/// Rough tuples-per-page figures derived from the schemas' row widths and
/// an 8 KB page (lineitem is ~136 B in the paper → ~60/page).
pub const EBAY_TPP: usize = 90;
/// lineitem tuples per page.
pub const TPCH_TPP: usize = 60;
/// PhotoTag tuples per page (wide rows).
pub const SDSS_TPP: usize = 25;

/// Experiment scale: `Full` for the binaries, `Smoke` for tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchScale {
    /// Full laptop-scale runs (default for the binaries).
    Full,
    /// Tiny runs for integration-test smoke coverage.
    Smoke,
}

impl BenchScale {
    /// Scale a full-size count down for smoke runs.
    pub fn n(&self, full: usize, smoke: usize) -> usize {
        match self {
            BenchScale::Full => full,
            BenchScale::Smoke => smoke,
        }
    }
}

/// eBay catalog at benchmark scale.
pub fn ebay_data(scale: BenchScale) -> EbayData {
    // The paper's proportions matter more than its absolute count: each
    // category must span multiple heap pages (they use 500-3000 items per
    // category) so that a clustered bucket covers only a few categories.
    ebay(EbayConfig {
        categories: scale.n(4_000, 400),
        min_items: scale.n(100, 3),
        max_items: scale.n(200, 8),
        seed: 0xEBA1,
    })
}

/// eBay `ITEMS` table clustered on `CATID`. The clustered bucket targets
/// ~2 pages: buckets should track `c_tups` (one category spans ~1.7
/// pages here), otherwise every CM hit drags in several unrelated
/// categories — the same tuning §6.1.1 performs for SDSS, where larger
/// `c_tups` makes ~10-page buckets the sweet spot.
pub fn ebay_table(disk: &Arc<DiskSim>, data: &EbayData) -> Table {
    Table::build(
        disk,
        data.schema.clone(),
        data.rows.clone(),
        EBAY_TPP,
        cm_datagen::ebay::COL_CATID,
        (EBAY_TPP * 2) as u64,
    )
    .expect("generated rows conform to schema")
}

/// TPC-H lineitem at benchmark scale.
pub fn tpch_data(scale: BenchScale) -> TpchData {
    tpch_lineitem(TpchConfig {
        rows: scale.n(400_000, 6_000),
        parts: scale.n(20_000, 500) as i64,
        suppliers: scale.n(1_000, 50) as i64,
        seed: 0x79C8,
    })
}

/// lineitem clustered on an arbitrary column.
pub fn tpch_table(disk: &Arc<DiskSim>, data: &TpchData, cluster_col: usize) -> Table {
    Table::build(
        disk,
        data.schema.clone(),
        data.rows.clone(),
        TPCH_TPP,
        cluster_col,
        (TPCH_TPP * 10) as u64,
    )
    .expect("generated rows conform to schema")
}

/// SDSS sky table at benchmark scale.
pub fn sdss_data(scale: BenchScale) -> SdssData {
    sdss(SdssConfig {
        rows: scale.n(200_000, 5_000),
        fields: 251,
        stripes: 20,
        seed: 0x5D55,
    })
}

/// PhotoTag clustered on an arbitrary column (objID by default).
pub fn sdss_table(disk: &Arc<DiskSim>, data: &SdssData, cluster_col: usize) -> Table {
    Table::build(
        disk,
        data.schema.clone(),
        data.rows.clone(),
        SDSS_TPP,
        cluster_col,
        (SDSS_TPP * 10) as u64,
    )
    .expect("generated rows conform to schema")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_builders_produce_small_tables() {
        let disk = DiskSim::with_defaults();
        let e = ebay_data(BenchScale::Smoke);
        let t = ebay_table(&disk, &e);
        assert!(t.heap().len() < 10_000);
        let td = tpch_data(BenchScale::Smoke);
        let tt = tpch_table(&disk, &td, cm_datagen::tpch::COL_RECEIPTDATE);
        assert_eq!(tt.clustered_col(), cm_datagen::tpch::COL_RECEIPTDATE);
        let sd = sdss_data(BenchScale::Smoke);
        let st = sdss_table(&disk, &sd, cm_datagen::sdss::COL_OBJID);
        assert_eq!(st.heap().len(), 5_000);
    }

    #[test]
    fn scale_helper() {
        assert_eq!(BenchScale::Full.n(100, 5), 100);
        assert_eq!(BenchScale::Smoke.n(100, 5), 5);
    }
}
