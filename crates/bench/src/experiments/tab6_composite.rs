//! **Table 6 / Experiment 5** — single vs. composite CMs vs. a composite
//! B+Tree for an SDSS two-range query.
//!
//! The paper's query (a variant of SDSS Q2) ranges over both `ra` and
//! `dec` with a `g + rho` residual. Neither coordinate alone predicts
//! the clustered `objID`, but the pair does: `CM(ra)` 4.0 s, `CM(dec)`
//! 1.7 s, `B+Tree(ra, dec)` 1.12 s (prefix-only), `CM(ra, dec)` 0.21 s
//! at 0.7 MB vs the B+Tree's 542 MB.

use crate::datasets::{sdss_data, sdss_table, BenchScale};
use crate::report::{bytes, ms, Report};
use cm_core::{BucketSpec, CmAttr, CmSpec};
use cm_datagen::sdss::{COL_DEC, COL_G, COL_OBJID, COL_RA, COL_RHO};
use cm_query::{ExecContext, Pred, Query};
use cm_storage::DiskSim;

/// Run the experiment.
pub fn run(scale: BenchScale) -> Report {
    let data = sdss_data(scale);
    let disk = DiskSim::with_defaults();
    let mut table = sdss_table(&disk, &data, COL_OBJID);

    // The paper's Q2 variant: 1.4° of ra, 0.144° of dec, g+rho residual.
    let q = Query::new(vec![
        Pred::between(COL_RA, 193.117, 194.517),
        Pred::between(COL_DEC, 1.411, 1.555),
    ]);
    let residual = |row: &[cm_storage::Value]| {
        let s = row[COL_G].as_float().unwrap_or(0.0) + row[COL_RHO].as_float().unwrap_or(0.0);
        (23.0..=25.0).contains(&s)
    };

    // Index designs, bucketed per the paper's Table 6 labels.
    let cm_ra = table.add_cm(
        "cm_ra",
        CmSpec::new(vec![CmAttr {
            col: COL_RA,
            bucket: BucketSpec::covering(0.0, 360.0, 1 << 12),
        }]),
    );
    let cm_dec = table.add_cm(
        "cm_dec",
        CmSpec::new(vec![CmAttr {
            col: COL_DEC,
            bucket: BucketSpec::covering(-10.0, 10.0, 1 << 14),
        }]),
    );
    // The composite grid is chosen so occupied cells hold ~10 objects
    // (the paper's 20M-row table reaches that density at 2^14 x 2^16;
    // at 200k rows the same *density* needs a coarser grid — what
    // matters is that pair-count, not row-count, bounds the CM size).
    let cm_pair = table.add_cm(
        "cm_ra_dec",
        CmSpec::new(vec![
            CmAttr {
                col: COL_RA,
                bucket: BucketSpec::covering(0.0, 360.0, 512),
            },
            CmAttr {
                col: COL_DEC,
                bucket: BucketSpec::covering(-10.0, 10.0, 40),
            },
        ]),
    );
    let bt_pair = table.add_secondary(&disk, "btree_ra_dec", vec![COL_RA, COL_DEC]);

    let mut report = Report::new(
        "tab6",
        "Single vs composite CMs vs composite B+Tree (SDSS ra/dec range query)",
        "CM(ra) worst, CM(dec) middling, composite B+Tree limited to its ra prefix, \
         composite CM fastest at ~1/800th the B+Tree size",
        vec!["index", "runtime", "size", "matched (g+rho filtered)"],
    );

    let mut results: Vec<(String, f64, u64)> = Vec::new();
    for (label, cm_id) in [
        ("CM(ra)", cm_ra),
        ("CM(dec)", cm_dec),
        ("CM(ra,dec)", cm_pair),
    ] {
        disk.reset();
        let ctx = ExecContext::cold(&disk);
        let mut matched = 0u64;
        table.exec_cm_scan_visit(&ctx, cm_id, &q, |row| {
            if residual(row) {
                matched += 1;
            }
        });
        let elapsed = disk.stats().elapsed_ms;
        let size = table.cm(cm_id).size_bytes();
        results.push((label.to_string(), elapsed, size));
        report.push(label, vec![ms(elapsed), bytes(size), matched.to_string()]);
    }
    {
        disk.reset();
        let ctx = ExecContext::cold(&disk);
        let mut matched = 0u64;
        table
            .exec_secondary_sorted_visit(&ctx, bt_pair, &q, |row| {
                if residual(row) {
                    matched += 1;
                }
            })
            .expect("ra predicate");
        let elapsed = disk.stats().elapsed_ms;
        let size = table.secondary(bt_pair).size_bytes();
        results.push(("B+Tree(ra,dec)".into(), elapsed, size));
        report.push(
            "B+Tree(ra,dec)",
            vec![ms(elapsed), bytes(size), matched.to_string()],
        );
    }

    let pair = &results[2];
    let ra_only = &results[0];
    let btree = &results[3];
    // Floor the composite's time at one seek when it proved emptiness from
    // memory alone (possible at tiny scales).
    let pair_ms = pair.1.max(5.5);
    report.commentary = format!(
        "composite CM is {:.0}x faster than CM(ra) and {:.1}x faster than the composite \
         B+Tree, at {:.0}x smaller size — the paper's ordering (CM(ra) > CM(dec) > \
         B+Tree(ra,dec) > CM(ra,dec))",
        ra_only.1 / pair_ms,
        btree.1 / pair_ms,
        btree.2 as f64 / pair.2.max(1) as f64,
    );
    report
}
