//! **Real-file I/O benchmark** — the `run_io` sweep replayed on an
//! actual device, sim-ms and wall-ms side by side.
//!
//! Every other experiment in this crate prices I/O with [`DiskSim`]'s
//! Table 1 constants. This one checks that pricing against hardware:
//! the same eBay table, the same forced access paths (full / sorted /
//! CM), the same deterministic round-robin session interleaving — but
//! the disk is backed by a [`FileDisk`] ([`DiskSim::with_backing`]), so
//! every charge also performs the real `pread`/`pwrite` (one vectored
//! syscall per contiguous run) and the wall clock lands in
//! [`cm_storage::IoStats::read_wall_ns`] next to the sim counters.
//!
//! Two questions are answered per cell:
//!
//! 1. **Does vectoring win on real files too?** Per-page mode issues one
//!    syscall per page; vectored mode one per run. Same bytes, far fewer
//!    kernel crossings (and, under `O_DIRECT`, far fewer device
//!    commands) — the wall-clock speedup is the hardware realisation of
//!    the sim's interleaving-immunity argument.
//! 2. **Does the sim's cost *ordering* predict the hardware's?** For
//!    each path x sessions cell the report records whether sim-ms and
//!    wall-ms agree on which mode is cheaper. Absolute sim-ms are 2009
//!    spinning-rust constants and will not match a modern device;
//!    orderings are what the advisor's decisions rest on.
//!
//! `O_DIRECT` is requested so cold-scan cells stay honestly cold, with
//! automatic fallback to buffered I/O where the filesystem refuses it
//! (tmpfs); the effective mode is printed in the commentary. Each cell
//! runs one untimed vectored warm-up pass first, so in buffered mode
//! both measured modes face the same (warm) page-cache state. Files live
//! in a self-deleting tempdir; set `FILE_IO_DIR=/path` to aim the bench
//! at a specific device instead.

use crate::datasets::{BenchScale, EBAY_TPP};
use crate::experiments::run_io::{measure, read_queries, PATHS, SESSIONS};
use crate::report::Report;
use cm_core::CmSpec;
use cm_datagen::ebay::{ebay, EbayConfig, COL_CATID};
use cm_query::Table;
use cm_storage::{DiskConfig, DiskSim, FileDisk, TempDir};
use std::path::PathBuf;

/// Run the benchmark.
pub fn run(scale: BenchScale) -> Report {
    // Half of `run_io`'s full row count: per-page O_DIRECT mode pays one
    // device command per page, and the point here is mode *comparison*
    // on identical traffic, not maximal volume.
    let cfg = EbayConfig {
        categories: scale.n(1_000, 200),
        min_items: scale.n(50, 10),
        max_items: scale.n(100, 20),
        seed: 0x10A4,
    };

    let mut report = Report::new(
        "file_io",
        "the run_io sweep (vectored vs per-page x {full, sorted, cm} scans x \
         1/8 sessions) replayed on a real-file backend: every DiskSim charge \
         also performs the actual pread/pwrite (one vectored syscall per \
         contiguous run, O_DIRECT when the filesystem allows), reporting \
         simulated ms and measured wall ms side by side per query",
        "vectored run I/O must also win on hardware — same bytes in far fewer \
         syscalls — so wall ms/query should drop at 8 sessions on every scan \
         type, and the sim's cheaper-mode ordering should agree with the wall \
         clock's in every cell (absolute ms differ: Table 1 models 2009 \
         spinning rust, the device under test does not)",
        vec![
            "path x sessions",
            "queries",
            "sim pp ms/q",
            "sim vec ms/q",
            "sim speedup",
            "wall pp ms/q",
            "wall vec ms/q",
            "wall speedup",
            "ordering",
        ],
    );

    // FILE_IO_DIR aims the files at a chosen device; default is a
    // self-deleting tempdir.
    let (dir, tmp): (PathBuf, Option<TempDir>) = match std::env::var("FILE_IO_DIR") {
        Ok(base) => (PathBuf::from(base).join("cm_file_io"), None),
        Err(_) => {
            let t = TempDir::new("cm-file-io").expect("create bench tempdir");
            (t.path().to_path_buf(), Some(t))
        }
    };
    let disk_cfg = DiskConfig::default();
    let fd = FileDisk::new(&dir, disk_cfg.page_bytes, true).expect("open file backend");
    let direct = fd.is_direct();
    let disk = DiskSim::with_backing(disk_cfg, fd);

    let data = ebay(cfg);
    let mut table = Table::build(
        &disk,
        data.schema.clone(),
        data.rows.clone(),
        EBAY_TPP,
        COL_CATID,
        (EBAY_TPP * 2) as u64,
    )
    .expect("generated rows conform to schema");
    table.add_secondary(&disk, "catid_idx", vec![COL_CATID]);
    table.add_cm("cat_cm", CmSpec::single_raw(COL_CATID));

    let per_session = scale.n(12, 4);

    let mut agreements = 0usize;
    let mut cells = 0usize;
    let mut wall_speedup_8: Vec<(String, f64)> = Vec::new();
    // Aggregate wall totals per session count, for the regression gate.
    let mut totals: Vec<(usize, f64, f64)> = SESSIONS.iter().map(|&s| (s, 0.0, 0.0)).collect();
    for path in PATHS {
        for sessions in SESSIONS {
            let queries = read_queries(data.category_paths.len(), sessions * per_session);
            // Untimed warm-up: materialises extents and, in buffered
            // mode, leaves the page cache equally warm for both modes.
            measure(&table, &disk, &queries, path, sessions, true);
            let (pp, pp_matched) = measure(&table, &disk, &queries, path, sessions, false);
            let (vec_io, vec_matched) = measure(&table, &disk, &queries, path, sessions, true);
            assert_eq!(pp_matched, vec_matched, "modes must agree on results");
            assert_eq!(pp.pages(), vec_io.pages(), "modes must touch the same pages");

            let n = queries.len() as f64;
            let sim_pp = pp.elapsed_ms / n;
            let sim_vec = vec_io.elapsed_ms / n;
            let wall_pp = pp.wall_ms() / n;
            let wall_vec = vec_io.wall_ms() / n;
            let sim_speedup = sim_pp / sim_vec.max(1e-9);
            let wall_speedup = wall_pp / wall_vec.max(1e-9);
            // Orderings agree when both clocks name the same cheaper
            // mode (ties, within 2%, agree with anything).
            let sim_order = ordering(sim_pp, sim_vec);
            let wall_order = ordering(wall_pp, wall_vec);
            let agree = sim_order == 0 || wall_order == 0 || sim_order == wall_order;
            cells += 1;
            agreements += agree as usize;
            if sessions == 8 {
                wall_speedup_8.push((path.to_string(), wall_speedup));
            }
            for t in totals.iter_mut().filter(|t| t.0 == sessions) {
                t.1 += pp.wall_ms();
                t.2 += vec_io.wall_ms();
            }
            report.push(
                format!("{path} x {sessions} session(s)"),
                vec![
                    format!("{}", queries.len()),
                    format!("{sim_pp:.2}"),
                    format!("{sim_vec:.2}"),
                    format!("{sim_speedup:.2}x"),
                    format!("{wall_pp:.3}"),
                    format!("{wall_vec:.3}"),
                    format!("{wall_speedup:.2}x"),
                    if agree { "agree".into() } else { "DISAGREE".into() },
                ],
            );
        }
    }

    // Regression gate (all scales): across a whole session sweep the
    // vectored mode must never be meaningfully slower than per-page on
    // the wall clock — >10% would mean the vectored syscall path itself
    // regressed. (Absolute timings are never gated; shared runners are
    // noisy, which is why this is an aggregate ratio with headroom.)
    for (sessions, pp_total, vec_total) in &totals {
        assert!(
            *vec_total <= *pp_total * 1.10,
            "vectored wall time regressed at {sessions} session(s): \
             {vec_total:.1} ms vectored vs {pp_total:.1} ms per-page"
        );
    }
    // At full scale the win itself is asserted — the acceptance bar for
    // the backend: fewer syscalls must beat per-page on every scan type.
    if matches!(scale, BenchScale::Full) {
        for (path, speedup) in &wall_speedup_8 {
            assert!(
                *speedup > 1.0,
                "vectored must beat per-page on the wall clock at 8 sessions \
                 ({path}: {speedup:.2}x)"
            );
        }
    }

    // Sampled after the sweep: the backing materialises file extents
    // lazily, on first touch, not at (in-memory) table build.
    let heap_bytes = disk.backing().expect("backed disk").bytes_on_disk();
    let speedups: Vec<String> = wall_speedup_8
        .iter()
        .map(|(p, s)| format!("{s:.1}x on {p}s"))
        .collect();
    report.commentary = format!(
        "real-device wall-clock speedup of vectored runs over per-page syscalls \
         at 8 concurrent sessions: {} ({} I/O, {:.1} MiB of pages on disk); \
         sim and wall cost orderings agree in {agreements}/{cells} cells — \
         DiskSim's *relative* pricing of the two modes carries over to \
         hardware even though its absolute constants model a 2009 disk",
        speedups.join(", "),
        if direct { "O_DIRECT" } else { "buffered (O_DIRECT unavailable here)" },
        heap_bytes as f64 / (1024.0 * 1024.0),
    );
    drop(tmp);
    if std::env::var("FILE_IO_DIR").is_ok() {
        let _ = std::fs::remove_dir_all(&dir);
    }
    report
}

/// -1 / 0 / +1: which side is cheaper, with a 2% tie band.
fn ordering(a: f64, b: f64) -> i32 {
    if (a - b).abs() <= 0.02 * a.max(b) {
        0
    } else if a < b {
        -1
    } else {
        1
    }
}
