//! **Figure 6 / Experiment 1** — CM vs. secondary B+Tree for price-range
//! queries over the eBay catalog clustered on CATID.
//!
//! The paper: both are an order of magnitude faster than a table scan
//! (>100 s, omitted from their plot); the CM runs 1–4 s behind the
//! B+Tree because bucketing reads extraneous heap pages — while being
//! three orders of magnitude smaller (0.9 MB vs 860 MB).

use crate::datasets::{ebay_data, ebay_table, BenchScale};
use crate::report::{bytes, ms, Report};
use cm_core::CmSpec;
use cm_datagen::ebay::COL_PRICE;
use cm_query::{ExecContext, Pred, Query};
use cm_storage::DiskSim;

/// Run the experiment.
pub fn run(scale: BenchScale) -> Report {
    let data = ebay_data(scale);
    let disk = DiskSim::with_defaults();
    let mut table = ebay_table(&disk, &data);
    let sec = table.add_secondary(&disk, "price_idx", vec![COL_PRICE]);
    // Experiment 1's bucket choice: 4096 price values per bucket (2^12).
    let cm = table.add_cm("price_cm", CmSpec::single_pow2(COL_PRICE, 12));

    let ranges: Vec<i64> = match scale {
        BenchScale::Full => (0..=10).map(|i| i * 1000).collect(),
        BenchScale::Smoke => vec![0, 5000, 10_000],
    };

    let mut report = Report::new(
        "fig6",
        "CM vs B+Tree for Price BETWEEN 1000 AND 1000+range (eBay, clustered CATID)",
        "CM runs slightly behind the B+Tree (extraneous bucketed pages) but an order \
         of magnitude ahead of a scan, at ~1/1000th the B+Tree's size",
        vec!["range [$]", "CM", "B+Tree", "table scan", "CM examined/matched"],
    );

    let mut worst_ratio: f64 = 0.0;
    let mut scan_ms_last = 0.0;
    for &r in &ranges {
        let q = Query::single(Pred::between(COL_PRICE, 1000i64, 1000 + r));
        disk.reset();
        let ctx = ExecContext::cold(&disk);
        let cm_run = table.exec_cm_scan(&ctx, cm, &q);
        let bt_run = table.exec_secondary_sorted(&ctx, sec, &q);
        let scan = table.exec_full_scan(&ctx, &q);
        scan_ms_last = scan.ms();
        worst_ratio = worst_ratio.max(cm_run.ms() / bt_run.ms().max(1e-9));
        report.push(
            r.to_string(),
            vec![
                ms(cm_run.ms()),
                ms(bt_run.ms()),
                ms(scan.ms()),
                format!("{}/{}", cm_run.examined, cm_run.matched),
            ],
        );
    }

    let cm_size = table.cm(cm).size_bytes();
    let bt_size = table.secondary(sec).size_bytes();
    report.commentary = format!(
        "CM stays within {:.1}x of the B+Tree and far below the {} scan; sizes: CM {} \
         vs B+Tree {} ({}x smaller)",
        worst_ratio,
        ms(scan_ms_last),
        bytes(cm_size),
        bytes(bt_size),
        bt_size / cm_size.max(1)
    );
    report
}
