//! **Figure 6 / Experiment 1** — CM vs. secondary B+Tree for price-range
//! queries over the eBay catalog clustered on CATID, served end-to-end by
//! the `cm-engine` facade (catalog + cost-routed execution) instead of a
//! hand-wired `Table`.
//!
//! The paper: both are an order of magnitude faster than a table scan
//! (>100 s, omitted from their plot); the CM runs 1–4 s behind the
//! B+Tree because bucketing reads extraneous heap pages — while being
//! three orders of magnitude smaller (0.9 MB vs 860 MB).

use crate::datasets::{ebay_data, BenchScale, EBAY_TPP};
use crate::report::{bytes, ms, Report};
use cm_core::CmSpec;
use cm_datagen::ebay::{COL_CATID, COL_PRICE};
use cm_engine::{Engine, EngineConfig};
use cm_query::{AccessPath, Pred, Query};

/// Run the experiment.
pub fn run(scale: BenchScale) -> Report {
    let data = ebay_data(scale);
    let engine = Engine::new(EngineConfig::default());
    engine
        .create_table(
            "items",
            data.schema.clone(),
            COL_CATID,
            EBAY_TPP,
            (EBAY_TPP * 2) as u64,
        )
        .expect("fresh catalog");
    engine
        .load("items", data.rows.clone())
        .expect("generated rows conform");
    let sec = engine
        .create_btree("items", "price_idx", vec![COL_PRICE])
        .expect("index");
    // Experiment 1's bucket choice: 4096 price values per bucket (2^12).
    let cm = engine
        .create_cm("items", "price_cm", CmSpec::single_pow2(COL_PRICE, 12))
        .expect("CM");

    let ranges: Vec<i64> = match scale {
        BenchScale::Full => (0..=10).map(|i| i * 1000).collect(),
        BenchScale::Smoke => vec![0, 5000, 10_000],
    };

    let mut report = Report::new(
        "fig6",
        "CM vs B+Tree for Price BETWEEN 1000 AND 1000+range (eBay, clustered CATID, \
         via cm-engine)",
        "CM runs slightly behind the B+Tree (extraneous bucketed pages) but an order \
         of magnitude ahead of a scan, at ~1/1000th the B+Tree's size",
        vec![
            "range [$]",
            "CM",
            "B+Tree",
            "table scan",
            "CM examined/matched",
        ],
    );

    // Cold session, as in the paper's flushed-cache query runs.
    let mut session = engine.session();
    session.set_cold_reads(true);

    let mut worst_ratio: f64 = 0.0;
    let mut scan_ms_last = 0.0;
    for &r in &ranges {
        let q = Query::single(Pred::between(COL_PRICE, 1000i64, 1000 + r));
        engine.disk().reset();
        let cm_run = session
            .execute_via("items", AccessPath::CmScan(cm), &q)
            .unwrap();
        let bt_run = session
            .execute_via("items", AccessPath::SecondarySorted(sec), &q)
            .unwrap();
        let scan = session
            .execute_via("items", AccessPath::FullScan, &q)
            .unwrap();
        scan_ms_last = scan.run.ms();
        worst_ratio = worst_ratio.max(cm_run.run.ms() / bt_run.run.ms().max(1e-9));
        report.push(
            r.to_string(),
            vec![
                ms(cm_run.run.ms()),
                ms(bt_run.run.ms()),
                ms(scan.run.ms()),
                format!("{}/{}", cm_run.run.examined, cm_run.run.matched),
            ],
        );
    }

    let (cm_size, bt_size) = engine
        .with_table("items", |t| {
            (t.cm(cm).size_bytes(), t.secondary(sec).size_bytes())
        })
        .unwrap();
    report.commentary = format!(
        "CM stays within {:.1}x of the B+Tree and far below the {} scan; sizes: CM {} \
         vs B+Tree {} ({}x smaller)",
        worst_ratio,
        ms(scan_ms_last),
        bytes(cm_size),
        bytes(bt_size),
        bt_size / cm_size.max(1)
    );
    report
}
