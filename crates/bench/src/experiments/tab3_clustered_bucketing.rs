//! **Table 3** — clustered-attribute bucketing granularity vs. I/O cost.
//!
//! The paper buckets the SDSS table's clustered attribute (objID) from 1
//! to 40 pages per bucket and runs SX6-style lookups on two `fieldID`
//! values (well-correlated with objID): pages scanned grow slowly (96 →
//! 160) and cost grows only by sequential I/O (15.34 → 19.5 ms), because
//! clustered-bucket false positives never add seeks.

use crate::datasets::{sdss_data, BenchScale, SDSS_TPP};
use crate::report::{ms, Report};
use cm_core::CmSpec;
use cm_datagen::sdss::COL_FIELDID;
use cm_query::{ExecContext, Pred, Query, Table};
use cm_storage::{DiskSim, Value};

/// Run the experiment.
pub fn run(scale: BenchScale) -> Report {
    let data = sdss_data(scale);
    let bucket_pages: Vec<u64> = vec![1, 5, 10, 15, 20, 40];

    let mut report = Report::new(
        "tab3",
        "Clustered bucketing granularity vs I/O cost (SDSS, 2-value fieldID lookup)",
        "pages scanned grow mildly with bucket size (96→160 in the paper) and cost \
         grows only by seq I/O (~15.3→19.5 ms): wider clustered buckets add no seeks",
        vec!["pages/bucket", "pages scanned", "seeks", "IO cost"],
    );

    let q = Query::single(Pred::is_in(
        COL_FIELDID,
        vec![Value::Int(60), Value::Int(170)],
    ));

    let mut first_cost = None;
    let mut last_cost = 0.0;
    for &bp in &bucket_pages {
        let disk = DiskSim::with_defaults();
        let mut table = Table::build(
            &disk,
            data.schema.clone(),
            data.rows.clone(),
            SDSS_TPP,
            cm_datagen::sdss::COL_OBJID,
            bp * SDSS_TPP as u64,
        )
        .expect("rows conform");
        let cm = table.add_cm("fieldID_cm", CmSpec::single_raw(COL_FIELDID));
        disk.reset();
        let ctx = ExecContext::cold(&disk);
        let r = table.exec_cm_scan(&ctx, cm, &q);
        if first_cost.is_none() {
            first_cost = Some(r.ms());
        }
        last_cost = r.ms();
        report.push(
            bp.to_string(),
            vec![
                (r.io.seeks + r.io.seq_reads).to_string(),
                r.io.seeks.to_string(),
                ms(r.ms()),
            ],
        );
    }

    report.commentary = format!(
        "40-page buckets cost {:.1}% more than 1-page buckets — the paper's Table 3 \
         shows the same insensitivity (a ~10-page bucket is the sweet spot)",
        100.0 * (last_cost / first_cost.unwrap_or(1.0) - 1.0)
    );
    report
}
