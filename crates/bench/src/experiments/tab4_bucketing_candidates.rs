//! **Table 4** — unclustered-attribute bucketings the advisor considers
//! for the SX6 query's attributes.
//!
//! The paper: `mode` (3 values) no bucketing; `type` (5) none ∼ 2¹;
//! `psfMag_g` (196,352) 2² ∼ 2¹⁶; `fieldID` (251) none ∼ 2⁶.

use crate::datasets::{sdss_data, sdss_table, BenchScale};
use crate::report::Report;
use cm_advisor::bucketing_candidates;
use cm_datagen::sdss::{COL_FIELDID, COL_MODE, COL_OBJID, COL_PSFMAG_G, COL_TYPE};
use cm_storage::DiskSim;

/// Run the experiment.
pub fn run(scale: BenchScale) -> Report {
    let data = sdss_data(scale);
    let disk = DiskSim::with_defaults();
    let mut table = sdss_table(&disk, &data, COL_OBJID);
    let cols = [COL_MODE, COL_TYPE, COL_PSFMAG_G, COL_FIELDID];
    table.analyze_cols(&cols);

    let mut report = Report::new(
        "tab4",
        "Bucketing candidates for the SX6 attributes (SDSS)",
        "mode: none; type: none∼2^1; psfMag_g: 2^2∼2^16; fieldID: none∼2^6 — few-valued \
         attributes stay raw, many-valued ones get an exponential width sweep",
        vec!["column", "cardinality", "bucket widths", "#candidates"],
    );

    let mut pre = String::from("Column       | Cardinality | Bucket Widths\n");
    for &col in &cols {
        let c = bucketing_candidates(&table, col);
        pre.push_str(&format!(
            "{:<12} | {:>11} | {}\n",
            c.name,
            c.cardinality,
            c.widths_label()
        ));
        report.push(
            c.name.clone(),
            vec![
                c.cardinality.to_string(),
                c.widths_label(),
                c.specs.len().to_string(),
            ],
        );
    }
    report.preformatted = Some(pre);
    report.commentary =
        "few-valued attributes (mode, type) are offered raw only; psfMag_g gets the \
         widest exponential sweep; fieldID a short one — matching the paper's Table 4 \
         structure"
            .into();
    report
}
