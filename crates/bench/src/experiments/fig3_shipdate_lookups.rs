//! **Figure 3** — secondary B+Tree on `shipdate` with a correlated
//! (`receiptdate`) vs. uncorrelated (primary-key) clustered index, for
//! `shipdate IN (1..100 dates)`.
//!
//! The paper: the uncorrelated layout degrades to the cost of a
//! sequential scan within ~4 shipdates; the correlated layout stays far
//! below it through 100 shipdates, and the §4 cost model tracks the
//! correlated curve closely.

use crate::datasets::{tpch_data, tpch_table, BenchScale};
use crate::report::{ms, Report};
use cm_cost::CostParams;
use cm_datagen::tpch::{COL_ORDERKEY, COL_RECEIPTDATE, COL_SHIPDATE};
use cm_query::{ExecContext, Pred, Query};
use cm_storage::DiskSim;

/// Run the experiment.
pub fn run(scale: BenchScale) -> Report {
    let data = tpch_data(scale);
    let ns: Vec<usize> = match scale {
        BenchScale::Full => vec![1, 2, 5, 10, 20, 40, 70, 100],
        BenchScale::Smoke => vec![1, 5, 10],
    };

    // Correlated layout: clustered on receiptdate.
    let disk_a = DiskSim::with_defaults();
    let mut corr = tpch_table(&disk_a, &data, COL_RECEIPTDATE);
    let sec_a = corr.add_secondary(&disk_a, "shipdate_idx", vec![COL_SHIPDATE]);
    corr.analyze_cols(&[COL_SHIPDATE]);

    // Uncorrelated layout: clustered on the primary key.
    let disk_b = DiskSim::with_defaults();
    let mut uncorr = tpch_table(&disk_b, &data, COL_ORDERKEY);
    let sec_b = uncorr.add_secondary(&disk_b, "shipdate_idx", vec![COL_SHIPDATE]);

    // Cost model for the correlated case (§4.1).
    let st = corr.col_stats(COL_SHIPDATE).expect("analyzed").corr.clone();
    let params = CostParams::new(
        &disk_a.config(),
        corr.heap().tups_per_page(),
        corr.heap().len(),
        corr.secondary(sec_a).height(),
    );

    let mut report = Report::new(
        "fig3",
        "B+Tree on shipdate: correlated vs uncorrelated clustering (TPC-H)",
        "uncorrelated curve hits the sequential-scan ceiling within ~4 shipdates; \
         correlated curve stays linear and far below; the cost model tracks it",
        vec![
            "#shipdates",
            "B+Tree (corr)",
            "B+Tree (uncorr)",
            "table scan",
            "model (corr)",
        ],
    );

    let scan_ms = {
        let ctx = ExecContext::cold(&disk_a);
        corr.exec_full_scan(&ctx, &Query::default()).ms()
    };

    let mut corr_at_max = 0.0;
    let mut uncorr_hit_ceiling_at: Option<usize> = None;
    for &n in &ns {
        let dates = data.random_shipdates(n, 0xF3);
        let q = Query::single(Pred::is_in(COL_SHIPDATE, dates));
        disk_a.reset();
        let ctx_a = ExecContext::cold(&disk_a);
        let r_corr = corr
            .exec_secondary_sorted(&ctx_a, sec_a, &q)
            .expect("shipdate predicate");
        disk_b.reset();
        let ctx_b = ExecContext::cold(&disk_b);
        let r_uncorr = uncorr
            .exec_secondary_sorted(&ctx_b, sec_b, &q)
            .expect("shipdate predicate");
        let model = params.cost_sorted(n as f64, st.c_per_u, st.c_tups);
        corr_at_max = r_corr.ms();
        if uncorr_hit_ceiling_at.is_none() && r_uncorr.ms() > 0.8 * scan_ms {
            uncorr_hit_ceiling_at = Some(n);
        }
        report.push(
            n.to_string(),
            vec![ms(r_corr.ms()), ms(r_uncorr.ms()), ms(scan_ms), ms(model)],
        );
    }

    report.commentary = format!(
        "uncorrelated reaches >=80% of the scan ceiling at n={} lookups and stays \
         pinned at/above it; correlated grows linearly and is at {:.0}% of the scan at \
         n={}. The model line shares the correlated shape but overestimates it — the \
         paper's own §4.1 caveat (overlapping Ac sets for adjacent lookups make the \
         model conservative), amplified here by intra-query index-page caching",
        uncorr_hit_ceiling_at.map_or_else(|| "-".into(), |n| n.to_string()),
        100.0 * corr_at_max / scan_ms,
        ns.last().unwrap()
    );
    report
}
