//! One module per reproduced table/figure. Each exposes
//! `run(scale) -> Report`; binaries print the report, `all_experiments`
//! collects them into `EXPERIMENTS.md`, and integration tests smoke-run
//! them at [`crate::datasets::BenchScale::Smoke`].

pub mod ablation_equidepth;
pub mod advisor_mix;
pub mod engine_join;
pub mod engine_mixed;
pub mod engine_sharded;
pub mod fanout_latency;
pub mod file_io;
pub mod fig10_cost_model;
pub mod fig1_access_patterns;
pub mod fig2_sdss_clusterings;
pub mod fig3_shipdate_lookups;
pub mod fig6_cm_vs_btree;
pub mod fig7_bucket_sweep;
pub mod fig8_maintenance;
pub mod fig9_mixed_workload;
pub mod mvcc_reads;
pub mod recovery;
pub mod run_io;
pub mod tab3_clustered_bucketing;
pub mod tab4_bucketing_candidates;
pub mod tab5_advisor_designs;
pub mod tab6_composite;

use crate::datasets::BenchScale;
use crate::report::Report;

/// Run every experiment in paper order.
pub fn run_all(scale: BenchScale) -> Vec<Report> {
    vec![
        fig1_access_patterns::run(scale),
        fig2_sdss_clusterings::run(scale),
        fig3_shipdate_lookups::run(scale),
        tab3_clustered_bucketing::run(scale),
        tab4_bucketing_candidates::run(scale),
        tab5_advisor_designs::run(scale),
        fig6_cm_vs_btree::run(scale),
        fig7_bucket_sweep::run(scale),
        fig8_maintenance::run(scale),
        fig9_mixed_workload::run(scale),
        fig10_cost_model::run(scale),
        tab6_composite::run(scale),
        ablation_equidepth::run(scale),
        engine_mixed::run(scale),
        engine_sharded::run(scale),
        engine_join::run(scale),
        fanout_latency::run(scale),
        mvcc_reads::run(scale),
        run_io::run(scale),
        file_io::run(scale),
        advisor_mix::run(scale),
        recovery::run(scale),
    ]
}
