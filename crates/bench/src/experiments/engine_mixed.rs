//! **Engine benchmark** — throughput of the `cm-engine` facade under a
//! concurrent mixed 90/10 read/write workload, with the reads cost-routed
//! by the engine's planner.
//!
//! Two engine configurations serve the same eBay table and an identical
//! operation mix: one with 5 secondary B+Trees, one with 5 CMs on the
//! same columns. This is the paper's Experiment 3 asymmetry restated as
//! a system-level throughput number: with B+Trees, insert maintenance
//! dirties buffer-pool pages that the SELECT traffic keeps needing; with
//! memory-resident CMs the pool serves reads almost exclusively.

use crate::datasets::{BenchScale, EBAY_TPP};
use crate::report::{ms, Report};
use cm_core::{CmAttr, CmSpec};
use cm_datagen::ebay::{ebay, EbayConfig, EbayData, COL_CATID, COL_ITEMID, COL_PRICE};
use cm_engine::{run_mixed, Engine, EngineConfig, MixedWorkloadConfig, WorkloadReport};
use cm_query::{Pred, PredOp, Query};

const POOL_PAGES: usize = 512;
const N_STRUCTURES: usize = 5;

/// The five indexed column sets, as in the paper's Experiment 3 mix: the
/// two selective hierarchy levels the SELECTs predicate, plus the
/// high-cardinality Price and ItemID columns and a composite whose
/// random leaf positions put real insert pressure on the shared pool.
fn index_cols(i: usize) -> Vec<usize> {
    match i {
        0 => vec![4], // CAT4
        1 => vec![5], // CAT5
        2 => vec![COL_PRICE],
        3 => vec![COL_ITEMID],
        _ => vec![6, COL_PRICE], // (CAT6, Price)
    }
}

/// Equivalent CM specs on the same columns (price-like columns bucketed).
fn cm_specs(i: usize) -> CmSpec {
    match i {
        0 => CmSpec::single_raw(4),
        1 => CmSpec::single_raw(5),
        2 => CmSpec::single_pow2(COL_PRICE, 12),
        3 => CmSpec::single_pow2(COL_ITEMID, 16),
        _ => CmSpec::new(vec![CmAttr::raw(6), CmAttr::pow2(COL_PRICE, 12)]),
    }
}

fn build_engine(data: &EbayData, use_cms: bool) -> std::sync::Arc<Engine> {
    let engine = Engine::new(EngineConfig {
        pool_pages: POOL_PAGES,
        ..EngineConfig::default()
    });
    engine
        .create_table(
            "items",
            data.schema.clone(),
            COL_CATID,
            EBAY_TPP,
            (EBAY_TPP * 2) as u64,
        )
        .expect("fresh catalog");
    engine
        .load("items", data.rows.clone())
        .expect("rows conform");
    for i in 0..N_STRUCTURES {
        if use_cms {
            engine
                .create_cm("items", format!("cm{i}"), cm_specs(i))
                .expect("CM");
        } else {
            engine
                .create_btree("items", format!("idx{i}"), index_cols(i))
                .expect("index");
        }
    }
    engine
}

/// The category columns the SELECTs predicate: CAT4 and CAT5, the
/// selective hierarchy levels (see fig9 for the rationale). Column
/// positions, not structure counts.
const SELECT_COLS: std::ops::RangeInclusive<usize> = 4..=5;

fn workload(data: &mut EbayData, scale: BenchScale) -> MixedWorkloadConfig {
    let reads: Vec<Query> = (0..scale.n(64, 8))
        .map(|s| {
            let mut seed = 31 * s as u64 + 7;
            loop {
                let (col, v) = data.random_cat_predicate(seed);
                if SELECT_COLS.contains(&col) {
                    return Query::single(Pred {
                        col,
                        op: PredOp::Eq(v),
                    });
                }
                seed += 7919;
            }
        })
        .collect();
    MixedWorkloadConfig {
        table: "items".into(),
        reads,
        insert_rows: data.insert_batch(scale.n(20_000, 400), 99),
        read_fraction: 0.9,
        ops: scale.n(5_000, 300),
        threads: 4,
        commit_every: 32,
        seed: 0xE61E,
        advise_after: None,
    }
}

/// Simulated-throughput ratio CM/B+Tree for one read fraction, pushing a
/// row per configuration.
fn run_mix(
    report: &mut Report,
    data: &mut EbayData,
    scale: BenchScale,
    mix_label: &str,
    read_fraction: f64,
) -> (f64, WorkloadReport) {
    let mut wl = workload(data, scale);
    wl.read_fraction = read_fraction;

    let bt_engine = build_engine(data, false);
    let bt = run_mixed(&bt_engine, &wl).expect("workload runs");
    report.push(format!("5 B+Trees {mix_label}"), row_cells(&bt));

    let cm_engine = build_engine(data, true);
    let cm = run_mixed(&cm_engine, &wl).expect("workload runs");
    report.push(format!("5 CMs {mix_label}"), row_cells(&cm));

    (cm.ops_per_sim_sec / bt.ops_per_sim_sec.max(1e-9), cm)
}

fn row_cells(r: &WorkloadReport) -> Vec<String> {
    vec![
        r.ops.to_string(),
        format!("{}/{}", r.reads, r.writes),
        format!("{:.0}", r.ops_per_sec),
        format!("{:.1}", r.ops_per_sim_sec),
        ms(r.io.elapsed_ms),
        format!(
            "{:.1}/{:.1}/{:.1}",
            r.read_latency.p50_ms, r.read_latency.p95_ms, r.read_latency.p99_ms
        ),
        format!(
            "{:.3}/{:.3}/{:.3}",
            r.write_latency.p50_ms, r.write_latency.p95_ms, r.write_latency.p99_ms
        ),
        format!(
            "cm:{} sorted:{} pipe:{} scan:{}",
            r.routes.cm_scan,
            r.routes.secondary_sorted,
            r.routes.secondary_pipelined,
            r.routes.full_scan
        ),
        format!("{:.0}%", r.pool.hit_rate() * 100.0),
        format!("{:.3}", r.io.seeks_per_page()),
    ]
}

/// Run the benchmark.
pub fn run(scale: BenchScale) -> Report {
    let cfg = EbayConfig {
        categories: scale.n(2_000, 200),
        min_items: scale.n(100, 3),
        max_items: scale.n(200, 8),
        seed: 0xE61E,
    };

    let mut report = Report::new(
        "engine_mixed",
        "cm-engine throughput under concurrent mixed read/write workloads \
         (4 sessions, cost-routed reads; 5 B+Trees vs 5 CMs)",
        "the write share decides the winner: B+Trees' tighter point reads pay off \
         while reads dominate (90/10), but in a write-dominated mix (10/90, the\
         paper\'s Experiment 3 proportions) the B+Tree configuration floods the shared pool with dirty pages and the \
         memory-resident CMs pull ahead — the crossover behind Experiment 3's \
         mixed-workload gap (>4x in the paper's write-heavy mix)",
        vec![
            "configuration",
            "ops",
            "reads/writes",
            "ops/s (wall)",
            "ops/s (simulated)",
            "simulated I/O",
            "read p50/p95/p99 (ms)",
            "write p50/p95/p99 (ms)",
            "routing",
            "pool hit",
            "seeks/page",
        ],
    );

    // One shared dataset: every engine loads a clone of the same rows and
    // both mixes draw the same insert batch, so the four rows are directly
    // comparable (and the ~300k-row generation runs once, not six times).
    let mut data = ebay(cfg);
    let (ratio_read_heavy, cm_report) = run_mix(&mut report, &mut data, scale, "90/10", 0.9);
    let (ratio_write_heavy, _) = run_mix(&mut report, &mut data, scale, "10/90", 0.1);

    report.latency = Some(crate::report::LatencySummary {
        p50_ms: cm_report.read_latency.p50_ms,
        p95_ms: cm_report.read_latency.p95_ms,
        p99_ms: cm_report.read_latency.p99_ms,
    });
    report.commentary = format!(
        "simulated-throughput ratio CM/B+Tree: {ratio_read_heavy:.1}x at 90/10, \
         {ratio_write_heavy:.1}x at 10/90 — heavier write traffic moves the advantage \
         to CMs; in the 90/10 run the CM engine cost-routed {} of {} reads through \
         CM-guided scans; workload seed {:#x} (re-run with it for a bit-identical \
         op sequence)",
        cm_report.routes.cm_scan, cm_report.reads, cm_report.seed
    );
    report
}
