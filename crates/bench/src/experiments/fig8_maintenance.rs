//! **Figure 8 / Experiment 3** — cost of bulk insertions as the number
//! of secondary B+Trees vs. CMs grows from 0 to 10, with each
//! configuration served by its own `cm-engine` instance (shared buffer
//! pool + engine WAL + session inserts) instead of a hand-wired
//! Table/BufferPool/Wal stack.
//!
//! The paper: B+Tree maintenance time deteriorates steeply with the
//! index count (each index dirties more buffer-pool pages per INSERT,
//! forcing evictions and random writes — down to 29 tuples/s at 10
//! B+Trees), while CM maintenance stays level (~900 tuples/s at 10 CMs)
//! because CMs are memory-resident; only WAL traffic grows.

use crate::datasets::{BenchScale, EBAY_TPP};
use crate::report::{ms, Report};
use cm_core::{CmAttr, CmSpec};
use cm_datagen::ebay::{ebay, EbayConfig, COL_CATID, COL_ITEMID, COL_PRICE};
use cm_engine::{Engine, EngineConfig};
use cm_storage::Row;

/// Buffer pool capacity in pages (small relative to the indexes' page
/// count, as in the paper's 1 GB RAM vs multi-GB indexes).
const POOL_PAGES: usize = 512;

/// The columns the up-to-10 indexes cover: the six hierarchy levels,
/// Price, ItemID, and two composites.
fn index_cols(i: usize) -> Vec<usize> {
    match i {
        0..=5 => vec![1 + i], // CAT1..CAT6
        6 => vec![COL_PRICE],
        7 => vec![COL_ITEMID],
        8 => vec![5, COL_PRICE],
        _ => vec![6, COL_PRICE],
    }
}

/// Equivalent CM specs on the same columns (price-like columns bucketed).
fn cm_spec(i: usize) -> CmSpec {
    match i {
        0..=5 => CmSpec::single_raw(1 + i),
        6 => CmSpec::single_pow2(COL_PRICE, 12),
        7 => CmSpec::single_pow2(COL_ITEMID, 16),
        8 => CmSpec::new(vec![CmAttr::raw(5), CmAttr::pow2(COL_PRICE, 12)]),
        _ => CmSpec::new(vec![CmAttr::raw(6), CmAttr::pow2(COL_PRICE, 12)]),
    }
}

/// Build an engine serving the eBay table with `n` access structures of
/// one kind, insert all batches through a session (WAL group commit per
/// batch), and return the simulated milliseconds.
fn run_inserts(cfg: EbayConfig, n: usize, use_cms: bool, batches: &[Vec<Row>]) -> f64 {
    let engine = Engine::new(EngineConfig {
        pool_pages: POOL_PAGES,
        ..EngineConfig::default()
    });
    let data = ebay(cfg);
    engine
        .create_table(
            "items",
            data.schema.clone(),
            COL_CATID,
            EBAY_TPP,
            (EBAY_TPP * 10) as u64,
        )
        .expect("fresh catalog");
    engine.load("items", data.rows).expect("rows conform");
    for i in 0..n {
        if use_cms {
            engine
                .create_cm("items", format!("cm{i}"), cm_spec(i))
                .expect("CM");
        } else {
            engine
                .create_btree("items", format!("idx{i}"), index_cols(i))
                .expect("index");
        }
    }
    let session = engine.session();
    engine.reset_io();
    for batch in batches {
        for row in batch {
            session
                .insert("items", row.clone())
                .expect("generated row conforms");
        }
        engine.commit();
    }
    engine.flush_pool();
    // Data-disk plus log-disk time: maintenance cost includes the WAL
    // flushes, as in the paper's Experiment 3 accounting.
    engine.io_totals().elapsed_ms
}

/// Run the experiment.
pub fn run(scale: BenchScale) -> Report {
    let cfg = EbayConfig {
        categories: scale.n(8_000, 200),
        min_items: scale.n(10, 3),
        max_items: scale.n(30, 8),
        seed: 0xF18,
    };
    let counts: Vec<usize> = match scale {
        BenchScale::Full => (0..=10).collect(),
        BenchScale::Smoke => vec![0, 2, 5],
    };
    let n_batches = scale.n(50, 3);
    let batch_size = scale.n(1_000, 100);

    // Shared insert workload: identical rows for every configuration.
    let batches: Vec<Vec<Row>> = {
        let mut data = ebay(cfg);
        (0..n_batches)
            .map(|b| data.insert_batch(batch_size, b as u64))
            .collect()
    };

    let mut report = Report::new(
        "fig8",
        "Cost of bulk insertions vs number of indexes (eBay, via cm-engine)",
        "B+Tree maintenance deteriorates steeply with index count (dirty-page \
         evictions); CM maintenance stays level (~30x gap at 10 indexes in the paper)",
        vec!["#indexes", "B+Tree maintenance", "CM maintenance", "ratio"],
    );

    let mut last_ratio = 1.0;
    for &n in &counts {
        let bt_ms = run_inserts(cfg, n, false, &batches);
        let cm_ms = run_inserts(cfg, n, true, &batches);
        last_ratio = bt_ms / cm_ms.max(1e-9);
        report.push(
            n.to_string(),
            vec![ms(bt_ms), ms(cm_ms), format!("{last_ratio:.1}x")],
        );
    }

    report.commentary = format!(
        "at {} indexes the B+Tree configuration is {:.0}x slower to maintain than the \
         CM configuration. The B+Tree side matches the paper's scale (tens of ms of \
         random I/O per insert at 10 indexes ~ their 29 tuples/s); the CM side is \
         cheaper than their 900 tuples/s because that figure was bounded by PostgreSQL \
         per-row CPU work, which a disk-cost simulator does not charge — the reproduced \
         claim is the shape: B+Trees deteriorate steeply, CMs stay level",
        counts.last().unwrap(),
        last_ratio
    );
    report
}
