//! **Join benchmark** — partitioned hash join vs the correlation-clamped
//! probe on TPC-H-shaped keys, with the planner choosing between them.
//!
//! The paper's CMs accelerate single-table lookups on attributes
//! correlated with the clustered key. The same map prices and
//! accelerates a *join* probe: the distinct build keys become one wide
//! `IN` over the probe table's CM, clamping the probe scan to the
//! co-clustered bucket ranges. On `lineitem` clustered by receiptdate:
//!
//! * joining a date dimension on **shipdate** (tightly correlated with
//!   receiptdate, §3.3's few-day lag) clamps to a handful of buckets —
//!   the clamp must beat the full probe scan on measured simulated I/O,
//!   and the planner must select it from exact CM lookups, unforced;
//! * joining a part dimension on **partkey** (uncorrelated with
//!   receiptdate) maps every build key to buckets spread across the
//!   whole heap — the clamp estimate exceeds the scan and the planner
//!   must fall back to the hash probe.
//!
//! A fresh engine per measured run keeps buffer-pool warmth from leaking
//! between strategies. A grouped-aggregation coda shows the same
//! fan-out/merge machinery cutting multi-shard latency with workers.

use crate::datasets::BenchScale;
use crate::report::{ms, Report};
use cm_core::CmSpec;
use cm_datagen::tpch::{self, tpch_lineitem, TpchConfig};
use cm_engine::{AggFunc, AggSpec, Engine, EngineConfig, JoinOutcome, JoinQuery, JoinStrategy};
use cm_query::Query;
use cm_storage::{Column, Row, Schema, Value, ValueType};
use std::sync::Arc;

const SHARDS: usize = 4;
const WORKERS: usize = 4;

struct Setup {
    data: cm_datagen::TpchData,
    ship_keys: Vec<Value>,
    part_keys: Vec<Value>,
}

fn setup(scale: BenchScale) -> Setup {
    let data = tpch_lineitem(TpchConfig {
        rows: scale.n(120_000, 2_500),
        parts: 1_000,
        suppliers: 50,
        seed: 77,
    });
    let ship_keys = data.random_shipdates(scale.n(6, 3), 11);
    let part_keys: Vec<Value> = (0..scale.n(6, 3) as i64)
        .map(|i| Value::Int((i * 157) % 1_000))
        .collect();
    Setup { data, ship_keys, part_keys }
}

/// A fresh engine: `lineitem` clustered on receiptdate with CMs on the
/// two join columns, plus one two-column dimension table per key set.
fn build_engine(s: &Setup) -> Arc<Engine> {
    let engine = Engine::new(EngineConfig {
        shards: SHARDS,
        workers: WORKERS,
        ..EngineConfig::default()
    });
    engine
        .create_table("lineitem", s.data.schema.clone(), tpch::COL_RECEIPTDATE, 60, 600)
        .expect("fresh catalog");
    engine.load("lineitem", s.data.rows.clone()).expect("rows conform");
    engine
        .create_cm("lineitem", "ship_cm", CmSpec::single_raw(tpch::COL_SHIPDATE))
        .expect("CM");
    engine
        .create_cm("lineitem", "part_cm", CmSpec::single_raw(tpch::COL_PARTKEY))
        .expect("CM");

    for (name, col_name, ty, keys) in [
        ("ship_dim", "shipdate", ValueType::Date, &s.ship_keys),
        ("part_dim", "partkey", ValueType::Int, &s.part_keys),
    ] {
        let schema = Arc::new(Schema::new(vec![
            Column::new(col_name, ty),
            Column::new("note", ValueType::Int),
        ]));
        engine.create_table(name, schema, 0, 20, 40).expect("fresh catalog");
        let rows: Vec<Row> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| vec![k.clone(), Value::Int(i as i64)])
            .collect();
        engine.load(name, rows).expect("rows conform");
    }
    engine
}

fn join_row(out: &JoinOutcome) -> Vec<String> {
    let est_cm = out.est_cm_ms.map_or("-".to_string(), ms);
    vec![
        out.strategy.to_string(),
        ms(out.est_hash_ms),
        est_cm,
        ms(out.probe_run.io.elapsed_ms),
        out.probe_run.io.pages().to_string(),
        format!("{:.3}", out.probe_run.io.seeks_per_page()),
        out.matched.to_string(),
        out.build_rows.to_string(),
    ]
}

/// Run the benchmark.
pub fn run(scale: BenchScale) -> Report {
    let s = setup(scale);
    let mut report = Report::new(
        "engine_join",
        "hash join vs correlation-clamped probe on TPC-H lineitem (clustered on \
         receiptdate), dimension joins on a correlated key (shipdate) and an \
         uncorrelated key (partkey), planner-selected per query",
        "shipdate co-clusters with receiptdate (§3.3's few-day receipt lag), so \
         clamping the probe to the build keys' CM buckets reads a handful of \
         sequential runs instead of the whole heap; partkey is uncorrelated, its \
         buckets span the heap, and the cost model must send that join back to \
         the full hash probe",
        vec![
            "join / strategy",
            "ran",
            "est hash probe",
            "est cm probe",
            "probe (sim)",
            "probe pages",
            "seeks/page",
            "out rows",
            "build rows",
        ],
    );

    let mut measured: Vec<(String, JoinOutcome)> = Vec::new();
    // CM ids follow creation order in `build_engine`: ship_cm, part_cm.
    for (label, dim, jq, cm_id) in [
        ("shipdate", "ship_dim", JoinQuery::on(tpch::COL_SHIPDATE, 0), 0usize),
        ("partkey", "part_dim", JoinQuery::on(tpch::COL_PARTKEY, 0), 1usize),
    ] {
        let runs: [(&str, Option<JoinStrategy>); 3] = [
            ("hash (forced)", Some(JoinStrategy::Hash)),
            ("cm-clamp (forced)", Some(JoinStrategy::CmClamp(cm_id))),
            ("planner", None),
        ];
        for (tag, forced) in runs {
            let engine = build_engine(&s);
            let out = match forced {
                Some(strategy) => engine.join_via("lineitem", dim, &jq, strategy),
                None => engine.join("lineitem", dim, &jq),
            }
            .expect("join runs");
            report.push(format!("{label} {tag}"), join_row(&out));
            measured.push((format!("{label} {tag}"), out));
        }
    }

    let get = |name: &str| -> &JoinOutcome {
        &measured.iter().find(|(l, _)| l == name).expect("row present").1
    };
    // Every strategy must agree on the join's cardinality.
    for key in ["shipdate", "partkey"] {
        let hash = get(&format!("{key} hash (forced)")).matched;
        let clamp = get(&format!("{key} cm-clamp (forced)")).matched;
        let auto = get(&format!("{key} planner")).matched;
        assert!(
            hash == clamp && clamp == auto,
            "{key}: strategies disagree on cardinality ({hash}/{clamp}/{auto})"
        );
    }

    let ship_hash = get("shipdate hash (forced)").probe_run.io.elapsed_ms;
    let ship_clamp = get("shipdate cm-clamp (forced)").probe_run.io.elapsed_ms;
    let ship_auto = get("shipdate planner").strategy;
    let part_auto = get("partkey planner").strategy;
    if matches!(scale, BenchScale::Full) {
        // The headline gates: the clamp's measured win on the correlated
        // key, selected by the planner, and the hash fallback on the
        // uncorrelated one. Only asserted at full scale — at smoke scale
        // the whole heap fits in a handful of buckets and every estimate
        // collapses to the scan ceiling.
        assert!(
            ship_clamp < 0.5 * ship_hash,
            "correlated clamp must beat the hash probe ({ship_clamp} vs {ship_hash} ms)"
        );
        assert!(
            matches!(ship_auto, JoinStrategy::CmClamp(_)),
            "planner selects the clamp on shipdate, got {ship_auto}"
        );
        assert_eq!(
            part_auto,
            JoinStrategy::Hash,
            "planner falls back to hash on the uncorrelated partkey"
        );
    }

    // ---- grouped-aggregation coda: fan-out on the same machinery ------
    let spec = AggSpec::new(
        vec![tpch::COL_SUPPKEY],
        vec![AggFunc::Count, AggFunc::Sum(tpch::COL_QUANTITY)],
    );
    let mut agg_ms = Vec::new();
    for workers in [1usize, WORKERS] {
        let engine = setup_engine_workers(&s, workers);
        let out = engine.aggregate("lineitem", &Query::default(), &spec).expect("agg runs");
        agg_ms.push(out.parallel_ms);
        report.push(
            format!("group-by suppkey x {workers} worker(s)"),
            vec![
                "agg".into(),
                "-".into(),
                "-".into(),
                ms(out.parallel_ms),
                out.run.io.pages().to_string(),
                format!("{:.3}", out.run.io.seeks_per_page()),
                out.rows.len().to_string(),
                "-".into(),
            ],
        );
    }

    report.commentary = format!(
        "correlated shipdate join: clamp probe {} vs hash probe {} ({:.1}x), planner \
         picked {}; uncorrelated partkey join: planner fell back to {}; grouped \
         aggregation makespan {} at 1 worker vs {} at {} workers over {} shards",
        ms(ship_clamp),
        ms(ship_hash),
        ship_hash / ship_clamp.max(1e-9),
        ship_auto,
        part_auto,
        ms(agg_ms[0]),
        ms(agg_ms[1]),
        WORKERS,
        SHARDS,
    );
    report
}

/// A fresh lineitem-only engine at a given worker count (the
/// aggregation coda varies workers, not data).
fn setup_engine_workers(s: &Setup, workers: usize) -> Arc<Engine> {
    let engine = Engine::new(EngineConfig {
        shards: SHARDS,
        workers,
        ..EngineConfig::default()
    });
    engine
        .create_table("lineitem", s.data.schema.clone(), tpch::COL_RECEIPTDATE, 60, 600)
        .expect("fresh catalog");
    engine.load("lineitem", s.data.rows.clone()).expect("rows conform");
    engine
}
