//! **Figure 7 / Experiment 2** — query runtime and CM size as a function
//! of the unclustered bucket level.
//!
//! The paper: CM runtime matches the B+Tree up to a critical bucket
//! level (~2¹³, the number of Price values the range predicate selects),
//! then degrades rapidly; CM size shrinks monotonically with the level,
//! already below the B+Tree with no bucketing. The knee is the "ideal"
//! bucket size the advisor aims for.

use crate::datasets::{ebay_data, ebay_table, BenchScale};
use crate::report::{bytes, ms, Report};
use cm_core::CmSpec;
use cm_cost::CostParams;
use cm_datagen::ebay::COL_PRICE;
use cm_query::{ExecContext, Pred, Query};
use cm_storage::DiskSim;

/// Run the experiment.
pub fn run(scale: BenchScale) -> Report {
    let data = ebay_data(scale);
    let disk = DiskSim::with_defaults();
    let mut table = ebay_table(&disk, &data);
    let sec = table.add_secondary(&disk, "price_idx", vec![COL_PRICE]);

    // The Experiment 2 query: Price BETWEEN 1000 AND 1100.
    let q = Query::single(Pred::between(COL_PRICE, 1000i64, 1100i64));
    let levels: Vec<u32> = match scale {
        BenchScale::Full => (2..=16).collect(),
        BenchScale::Smoke => vec![4, 8, 12],
    };

    let ctx = ExecContext::cold(&disk);
    let bt_ms = {
        disk.reset();
        table
            .exec_secondary_sorted(&ctx, sec, &q)
            .expect("indexed predicate")
            .ms()
    };
    let params = CostParams::new(
        &disk.config(),
        table.heap().tups_per_page(),
        table.heap().len(),
        table.clustered().height(),
    );

    let mut report = Report::new(
        "fig7",
        "Runtime and CM size vs bucket level (eBay, Price BETWEEN 1000 AND 1100)",
        "runtime stays near the B+Tree up to a critical level then grows rapidly; \
         size decreases monotonically — the knee is the ideal bucketing",
        vec!["level", "CM runtime", "model", "B+Tree", "CM size"],
    );

    let mut sizes: Vec<u64> = Vec::new();
    let mut runtimes: Vec<f64> = Vec::new();
    for &level in &levels {
        let mut t2 = ebay_table(&disk, &data);
        let cm = t2.add_cm(
            format!("price_cm_{level}"),
            CmSpec::single_pow2(COL_PRICE, level),
        );
        disk.reset();
        let ctx2 = ExecContext::cold(&disk);
        let run = t2.exec_cm_scan(&ctx2, cm, &q);
        let cmref = t2.cm(cm);
        // Model: number of CM keys the 100-wide range selects at this
        // width, times the CM's bucketed c_per_u.
        let n_keys = (100.0 / (1u64 << level) as f64).ceil().max(1.0);
        let model = params.cost_cm(
            n_keys,
            cmref.avg_cbuckets_per_key(),
            t2.dir().avg_pages_per_bucket(),
            t2.clustered().height() as f64,
        );
        sizes.push(cmref.size_bytes());
        runtimes.push(run.ms());
        report.push(
            level.to_string(),
            vec![
                ms(run.ms()),
                ms(model),
                ms(bt_ms),
                bytes(cmref.size_bytes()),
            ],
        );
    }

    let knee = levels
        .iter()
        .zip(&runtimes)
        .find(|(_, &r)| r > 2.0 * runtimes[0])
        .map(|(l, _)| *l);
    report.commentary = format!(
        "size shrinks {}x across the sweep; runtime degrades past level {} — the knee \
         sits near log2 of the number of price values the range selects, exactly the \
         paper's critical-bucket-size argument (their knee: 2^13)",
        sizes.first().unwrap_or(&1) / sizes.last().unwrap_or(&1).max(&1),
        knee.map_or_else(|| "(none within sweep)".into(), |l| l.to_string()),
    );
    report
}
