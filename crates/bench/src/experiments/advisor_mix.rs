//! **Engine benchmark** — the workload-aware design advisor vs static
//! physical designs, across the write share.
//!
//! PR 1's `engine_mixed` measured the crossover the paper predicts:
//! B+Trees win the read-heavy 90/10 mix while memory-resident CMs win
//! the write-heavy 10/90 mix by a wide margin. This benchmark closes the
//! loop: a third engine starts with **no secondary structures at all**,
//! profiles its own traffic online, and re-plans its physical design
//! mid-run (`MixedWorkloadConfig::advise_after` →
//! `Engine::advise_design` + `Engine::apply_design`). If the advisor's
//! cost books are honest, the advised engine should land within a few
//! percent of whichever static design is best *for that mix* — B+Trees
//! at 90/10, CMs at 10/90 — without being told the mix.

use crate::datasets::{BenchScale, EBAY_TPP};
use crate::report::{ms, Report};
use cm_core::{CmAttr, CmSpec};
use cm_datagen::ebay::{ebay, EbayConfig, EbayData, COL_CATID, COL_ITEMID, COL_PRICE};
use cm_engine::{run_mixed, Engine, EngineConfig, MixedWorkloadConfig, WorkloadReport};
use cm_query::{Pred, PredOp, Query};

/// Shared pool size: small enough that the read working set and index
/// maintenance compete for frames at both scales.
fn pool_pages(scale: BenchScale) -> usize {
    scale.n(512, 24)
}

/// The five static column sets, exactly `engine_mixed`'s: the two
/// selective hierarchy levels the SELECTs predicate, the
/// high-cardinality Price and ItemID columns, and a composite.
fn index_cols(i: usize) -> Vec<usize> {
    match i {
        0 => vec![4], // CAT4
        1 => vec![5], // CAT5
        2 => vec![COL_PRICE],
        3 => vec![COL_ITEMID],
        _ => vec![6, COL_PRICE], // (CAT6, Price)
    }
}

/// Equivalent CM specs on the same columns.
fn cm_specs(i: usize) -> CmSpec {
    match i {
        0 => CmSpec::single_raw(4),
        1 => CmSpec::single_raw(5),
        2 => CmSpec::single_pow2(COL_PRICE, 12),
        3 => CmSpec::single_pow2(COL_ITEMID, 16),
        _ => CmSpec::new(vec![CmAttr::raw(6), CmAttr::pow2(COL_PRICE, 12)]),
    }
}

/// Build an engine over a clone of the shared dataset. `structures`:
/// `None` = bare (the advised engine's starting point), `Some(true)` =
/// 5 CMs, `Some(false)` = 5 B+Trees.
fn build_engine(
    data: &EbayData,
    scale: BenchScale,
    structures: Option<bool>,
) -> std::sync::Arc<Engine> {
    let engine = Engine::new(EngineConfig {
        pool_pages: pool_pages(scale),
        ..EngineConfig::default()
    });
    engine
        .create_table(
            "items",
            data.schema.clone(),
            COL_CATID,
            EBAY_TPP,
            (EBAY_TPP * 2) as u64,
        )
        .expect("fresh catalog");
    engine
        .load("items", data.rows.clone())
        .expect("rows conform");
    if let Some(use_cms) = structures {
        for i in 0..5 {
            if use_cms {
                engine
                    .create_cm("items", format!("cm{i}"), cm_specs(i))
                    .expect("CM");
            } else {
                engine
                    .create_btree("items", format!("idx{i}"), index_cols(i))
                    .expect("index");
            }
        }
    }
    engine
}

/// The category columns the SELECTs predicate (CAT4/CAT5, as in
/// `engine_mixed`).
const SELECT_COLS: std::ops::RangeInclusive<usize> = 4..=5;

fn workload(data: &mut EbayData, scale: BenchScale, read_fraction: f64) -> MixedWorkloadConfig {
    let reads: Vec<Query> = (0..scale.n(64, 16))
        .map(|s| {
            let mut seed = 31 * s as u64 + 7;
            loop {
                let (col, v) = data.random_cat_predicate(seed);
                if SELECT_COLS.contains(&col) {
                    return Query::single(Pred {
                        col,
                        op: PredOp::Eq(v),
                    });
                }
                seed += 7919;
            }
        })
        .collect();
    let ops = scale.n(5_000, 300);
    MixedWorkloadConfig {
        table: "items".into(),
        reads,
        insert_rows: data.insert_batch(scale.n(20_000, 400), 99),
        read_fraction,
        ops,
        threads: 4,
        commit_every: 32,
        seed: 0x00AD_115E,
        advise_after: None,
    }
}

fn row_cells(r: &WorkloadReport, design: String) -> Vec<String> {
    vec![
        r.ops.to_string(),
        format!("{}/{}", r.reads, r.writes),
        format!("{:.1}", r.ops_per_sim_sec),
        ms(r.io.elapsed_ms),
        format!(
            "{:.1}/{:.1}/{:.1}",
            r.read_latency.p50_ms, r.read_latency.p95_ms, r.read_latency.p99_ms
        ),
        format!(
            "cm:{} sorted:{} pipe:{} scan:{}",
            r.routes.cm_scan,
            r.routes.secondary_sorted,
            r.routes.secondary_pipelined,
            r.routes.full_scan
        ),
        format!("{:.0}%", r.pool.hit_rate() * 100.0),
        design,
    ]
}

/// Throughputs measured at one write share: (static B+Trees, static CMs,
/// advised steady state, the advised design label).
struct MixOutcome {
    btree: f64,
    cm: f64,
    advised: f64,
    label: String,
}

fn run_mix(
    report: &mut Report,
    data: &mut EbayData,
    scale: BenchScale,
    mix_label: &str,
    read_fraction: f64,
) -> MixOutcome {
    let wl = workload(data, scale, read_fraction);

    let bt_engine = build_engine(data, scale, Some(false));
    let bt = run_mixed(&bt_engine, &wl).expect("workload runs");
    report.push(
        format!("static 5 B+Trees {mix_label}"),
        row_cells(&bt, "5x btree".into()),
    );

    let cm_engine = build_engine(data, scale, Some(true));
    let cm = run_mixed(&cm_engine, &wl).expect("workload runs");
    report.push(
        format!("static 5 CMs {mix_label}"),
        row_cells(&cm, "5x cm".into()),
    );

    // The advised engine: bare start, online profile, mid-run re-plan at
    // 20% of the ops. Its row includes the expensive unindexed prefix —
    // the price of not knowing the workload up front.
    let adv_engine = build_engine(data, scale, None);
    let mut adv_wl = wl.clone();
    adv_wl.advise_after = Some(wl.ops / 5);
    let replanned = run_mixed(&adv_engine, &adv_wl).expect("workload runs");
    let advice = replanned.advice.clone().expect("re-plan fired");
    report.push(
        format!("advised (incl. re-plan) {mix_label}"),
        row_cells(&replanned, advice.label.clone()),
    );
    // Steady state: the advised design applied to a fresh engine over
    // the same data, so the comparison against the statics holds the
    // table constant and measures only the design choice.
    let steady_engine = build_engine(data, scale, None);
    steady_engine
        .apply_design("items", &advice.design)
        .expect("design applies");
    let steady = run_mixed(&steady_engine, &wl).expect("workload runs");
    report.push(
        format!("advised steady {mix_label}"),
        row_cells(&steady, advice.label.clone()),
    );

    MixOutcome {
        btree: bt.ops_per_sim_sec,
        cm: cm.ops_per_sim_sec,
        advised: steady.ops_per_sim_sec,
        label: advice.label,
    }
}

/// Run the benchmark.
pub fn run(scale: BenchScale) -> Report {
    let cfg = EbayConfig {
        categories: scale.n(2_000, 400),
        min_items: scale.n(100, 4),
        max_items: scale.n(200, 10),
        seed: 0xE61E,
    };

    let mut report = Report::new(
        "advisor_mix",
        "workload-aware design advisor vs static designs across the write share \
         (4 sessions; advised engine starts bare, profiles online, re-plans mid-run)",
        "the paper's advisor picks CM designs from query cost alone; the engine's \
         crossover (engine_mixed: B+Trees best at 90/10 reads, CMs ~8x at 10/90) \
         demands the structure *set* be chosen from the read/write mix — the \
         advised engine should match the best static design at each mix without \
         being told the mix, and beat the wrong-way static design",
        vec![
            "configuration",
            "ops",
            "reads/writes",
            "ops/s (simulated)",
            "simulated I/O",
            "read p50/p95/p99 (ms)",
            "routing",
            "pool hit",
            "design",
        ],
    );

    let mut data = ebay(cfg);
    let read_heavy = run_mix(&mut report, &mut data, scale, "90/10", 0.9);
    let write_heavy = run_mix(&mut report, &mut data, scale, "10/90", 0.1);

    let vs_best_rh = read_heavy.advised / read_heavy.btree.max(read_heavy.cm).max(1e-9);
    let vs_best_wh = write_heavy.advised / write_heavy.btree.max(write_heavy.cm).max(1e-9);
    let vs_worst_rh = read_heavy.advised / read_heavy.btree.min(read_heavy.cm).max(1e-9);
    let vs_worst_wh = write_heavy.advised / write_heavy.btree.min(write_heavy.cm).max(1e-9);
    report.commentary = format!(
        "advised/best-static throughput: {vs_best_rh:.2}x at 90/10 (chose {}), \
         {vs_best_wh:.2}x at 10/90 (chose {}); advised/wrong-way-static: \
         {vs_worst_rh:.1}x at 90/10, {vs_worst_wh:.1}x at 10/90 — the advisor \
         tracks the crossover from the profiled mix alone",
        read_heavy.label, write_heavy.label
    );
    report
}
