//! **Figure 9 / Experiment 3 (mixed)** — 500k INSERTs interleaved with
//! 5k SELECTs over 5 B+Trees vs. 5 CMs.
//!
//! The paper: inserts get more expensive for both (SELECTs consume
//! buffer-pool space and accelerate dirty-page overflow), but CMs win
//! even on SELECTs in the mixed workload because B+Tree queries keep
//! re-reading pages evicted by update traffic; in total, 5 CMs are >4×
//! faster than 5 B+Trees.

use crate::datasets::{BenchScale, EBAY_TPP};
use crate::report::{ms, Report};
use cm_core::CmSpec;
use cm_datagen::ebay::{ebay, EbayConfig, COL_CATID, COL_PRICE};
use cm_query::{ExecContext, Pred, Query, Table};
use cm_storage::{BufferPool, DiskSim, Row, Value, Wal};

const POOL_PAGES: usize = 512;
/// Number of hierarchy-level indexes/CMs (the paper uses 5).
const N_INDEXES: usize = 5;

struct Workload {
    batches: Vec<Vec<Row>>,
    /// Per batch, the (column, value) predicates of the follow-up SELECTs.
    selects: Vec<Vec<(usize, Value)>>,
}

fn workload(cfg: EbayConfig, runs: usize, batch: usize, selects_per_run: usize) -> Workload {
    let mut data = ebay(cfg);
    let mut batches = Vec::with_capacity(runs);
    let mut selects = Vec::with_capacity(runs);
    for r in 0..runs {
        batches.push(data.insert_batch(batch, r as u64));
        selects.push(
            (0..selects_per_run)
                .map(|s| {
                    // Restrict predicates to the selective hierarchy
                    // levels (CAT4, CAT5): each value maps to a handful
                    // of categories, as in the paper's per-category
                    // selects. Shallow levels (CAT1 covers 1/30th of the
                    // table) would measure bucketing false positives, not
                    // the buffer-pool effect this experiment isolates.
                    let mut seed = (r * 1000 + s) as u64;
                    loop {
                        let (col, v) = data.random_cat_predicate(seed);
                        if (4..=N_INDEXES).contains(&col) {
                            return (col, v);
                        }
                        seed += 7919;
                    }
                })
                .collect(),
        );
    }
    Workload { batches, selects }
}

/// Run one configuration; returns (insert_ms, select_ms).
fn run_config(cfg: EbayConfig, wl: &Workload, use_cms: bool, with_selects: bool) -> (f64, f64) {
    let disk = DiskSim::with_defaults();
    let data = ebay(cfg);
    let mut table = Table::build(
        &disk,
        data.schema.clone(),
        data.rows,
        EBAY_TPP,
        COL_CATID,
        (EBAY_TPP * 2) as u64,
    )
    .expect("rows conform");
    for i in 0..N_INDEXES {
        if use_cms {
            table.add_cm(format!("cm_cat{}", i + 1), CmSpec::single_raw(1 + i));
        } else {
            table.add_secondary(&disk, format!("idx_cat{}", i + 1), vec![1 + i]);
        }
    }
    let pool = BufferPool::new(disk.clone(), POOL_PAGES);
    let mut wal = Wal::new(disk.clone());
    disk.reset();
    let mut insert_ms = 0.0;
    let mut select_ms = 0.0;
    for (batch, sels) in wl.batches.iter().zip(&wl.selects) {
        let before = disk.stats();
        for row in batch {
            table
                .insert_row(&pool, Some(&mut wal), row.clone())
                .expect("row conforms");
        }
        wal.commit();
        insert_ms += disk.stats().since(&before).elapsed_ms;

        if with_selects {
            let before = disk.stats();
            for (col, v) in sels {
                let q = Query::single(Pred {
                    col: *col,
                    op: cm_query::PredOp::Eq(v.clone()),
                });
                let ctx = ExecContext::through(&disk, &pool);
                let idx = col - 1; // structure i covers CAT{i+1}
                let mut sum = 0i64;
                let mut n = 0u64;
                if use_cms {
                    table.exec_cm_scan_visit(&ctx, idx, &q, |row| {
                        sum += row[COL_PRICE].as_int().unwrap_or(0);
                        n += 1;
                    });
                } else {
                    table
                        .exec_secondary_sorted_visit(&ctx, idx, &q, |row| {
                            sum += row[COL_PRICE].as_int().unwrap_or(0);
                            n += 1;
                        })
                        .expect("price predicate");
                }
                let _avg = if n > 0 { sum / n as i64 } else { 0 };
            }
            select_ms += disk.stats().since(&before).elapsed_ms;
        }
    }
    let before = disk.stats();
    pool.flush_all();
    insert_ms += disk.stats().since(&before).elapsed_ms;
    (insert_ms, select_ms)
}

/// Run the experiment.
pub fn run(scale: BenchScale) -> Report {
    // Categories span ~1.7 pages (the paper's categories span ~30), so
    // the clustered buckets below are sized to ~2 pages; see
    // datasets::ebay_table for the rationale.
    let cfg = EbayConfig {
        categories: scale.n(2_000, 200),
        min_items: scale.n(100, 3),
        max_items: scale.n(200, 8),
        seed: 0xF19,
    };
    let runs = scale.n(25, 3);
    let batch = scale.n(1_000, 100);
    let selects_per_run = scale.n(50, 5);
    let wl = workload(cfg, runs, batch, selects_per_run);

    let (bt_mix_ins, bt_mix_sel) = run_config(cfg, &wl, false, true);
    let (bt_ins, _) = run_config(cfg, &wl, false, false);
    let (cm_mix_ins, cm_mix_sel) = run_config(cfg, &wl, true, true);
    let (cm_ins, _) = run_config(cfg, &wl, true, false);

    let mut report = Report::new(
        "fig9",
        "Mixed workload: INSERT batches + SELECTs over 5 B+Trees vs 5 CMs (eBay)",
        "CMs beat B+Trees on BOTH phases in the mix (B+Tree SELECTs re-read pages \
         evicted by update traffic); overall >4x in the paper",
        vec!["configuration", "INSERT time", "SELECT time", "total"],
    );
    report.push(
        "B+Tree-mix",
        vec![ms(bt_mix_ins), ms(bt_mix_sel), ms(bt_mix_ins + bt_mix_sel)],
    );
    report.push(
        "B+Tree (insert only)",
        vec![ms(bt_ins), "-".into(), ms(bt_ins)],
    );
    report.push(
        "CM-mix",
        vec![ms(cm_mix_ins), ms(cm_mix_sel), ms(cm_mix_ins + cm_mix_sel)],
    );
    report.push("CM (insert only)", vec![ms(cm_ins), "-".into(), ms(cm_ins)]);

    report.commentary = format!(
        "mixed totals: B+Trees {} vs CMs {} ({:.1}x); insert-only: {:.1}x — the mixed \
         gap is wider, as in the paper",
        ms(bt_mix_ins + bt_mix_sel),
        ms(cm_mix_ins + cm_mix_sel),
        (bt_mix_ins + bt_mix_sel) / (cm_mix_ins + cm_mix_sel).max(1e-9),
        bt_ins / cm_ins.max(1e-9),
    );
    report
}
