//! **Sharding benchmark** — aggregate throughput of the `cm-engine`
//! facade as the shard count grows, under concurrent mixed read/write
//! workloads, plus the WAL group-commit effect at fixed concurrency.
//!
//! The paper's core claim is that CMs convert secondary-attribute probes
//! into a few *sequential* clustered ranges — but one shared simulated
//! disk head destroys that advantage the moment several sessions scan
//! concurrently: their page accesses interleave and every read becomes a
//! seek. Range-partitioning each table across N shards (each with its
//! own disk + pool) keeps concurrent scans sequential, and the
//! group-commit WAL keeps concurrent committers from serializing on the
//! log. Total buffer-pool RAM is held constant across shard counts, so
//! the sweep isolates the head-interleaving effect.

use crate::datasets::{BenchScale, EBAY_TPP};
use crate::report::{ms, Report};
use cm_core::CmSpec;
use cm_datagen::ebay::{ebay, EbayConfig, EbayData, COL_CATID, COL_PRICE};
use cm_engine::{run_mixed, Engine, EngineConfig, MixedWorkloadConfig, WorkloadReport};
use cm_query::{Pred, Query};
use cm_storage::GroupCommitConfig;

/// Total pool pages, divided across shards (equal RAM per config).
const POOL_PAGES: usize = 512;
/// Concurrent sessions — enough that scans collide on a single head.
const THREADS: usize = 8;
/// Shard counts swept.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn build_engine(
    data: &EbayData,
    shards: usize,
    group_commit: GroupCommitConfig,
) -> std::sync::Arc<Engine> {
    let engine = Engine::new(EngineConfig {
        pool_pages: POOL_PAGES,
        shards,
        group_commit,
        ..EngineConfig::default()
    });
    engine
        .create_table(
            "items",
            data.schema.clone(),
            COL_CATID,
            EBAY_TPP,
            (EBAY_TPP * 2) as u64,
        )
        .expect("fresh catalog");
    engine
        .load("items", data.rows.clone())
        .expect("rows conform");
    // A CM on the clustered attribute itself guides range queries to the
    // overlapping buckets (intersected per shard), and a bucketed CM on
    // Price serves the secondary-attribute lookups.
    engine
        .create_cm("items", "cat_cm", CmSpec::single_raw(COL_CATID))
        .expect("CM");
    engine
        .create_cm("items", "price_cm", CmSpec::single_pow2(COL_PRICE, 12))
        .expect("CM");
    engine
}

/// Reads alternate between clustered CATID range scans (the sequential
/// sweeps sharding protects) and Price lookups through the CM (fanned
/// out to every shard, cheap on each).
fn read_queries(categories: usize, scale: BenchScale) -> Vec<Query> {
    let span = (categories / 40).max(1) as i64;
    (0..scale.n(64, 8))
        .map(|s| {
            if s % 2 == 0 {
                let lo = ((s as i64) * 613) % (categories as i64 - span).max(1);
                Query::single(Pred::between(COL_CATID, lo, lo + span))
            } else {
                let p = ((s as i64) * 7919) % 1_000_000;
                Query::single(Pred::between(COL_PRICE, p, p + 2_000))
            }
        })
        .collect()
}

fn workload(data: &mut EbayData, scale: BenchScale, read_fraction: f64) -> MixedWorkloadConfig {
    MixedWorkloadConfig {
        table: "items".into(),
        reads: read_queries(data.category_paths.len(), scale),
        insert_rows: data.insert_batch(scale.n(20_000, 400), 7),
        read_fraction,
        ops: scale.n(4_000, 240),
        threads: THREADS,
        commit_every: 16,
        seed: 0x5A4D,
        advise_after: None,
    }
}

fn row_cells(r: &WorkloadReport) -> Vec<String> {
    let busy = r.per_shard_io.iter().filter(|io| io.pages() > 0).count();
    vec![
        format!("{}/{}", r.reads, r.writes),
        format!("{:.1}", r.ops_per_sim_sec),
        format!("{:.1}", r.ops_per_sim_sec_parallel),
        ms(r.sim_makespan_ms),
        format!(
            "{:.1}/{:.1}/{:.1}",
            r.read_latency.p50_ms, r.read_latency.p95_ms, r.read_latency.p99_ms
        ),
        busy.to_string(),
        format!("{}/{}", r.wal.flushes, r.wal.commit_requests),
        format!(
            "{:.2}",
            r.wal.pages_flushed as f64 / (r.writes.max(1)) as f64
        ),
        format!("{:.0}%", r.pool.hit_rate() * 100.0),
        format!("{:.3}", r.io.seeks_per_page()),
    ]
}

/// Run the benchmark.
pub fn run(scale: BenchScale) -> Report {
    let cfg = EbayConfig {
        categories: scale.n(2_000, 200),
        min_items: scale.n(100, 3),
        max_items: scale.n(200, 8),
        seed: 0x5A4D,
    };

    let mut report = Report::new(
        "engine_sharded",
        "cm-engine aggregate throughput vs shard count (range-partitioned eBay \
         table, 8 sessions, cost-routed reads) and WAL group commit vs per-commit \
         flushing",
        "concurrent scans on one simulated head interleave into seeks; sharding by \
         clustered-key range keeps each shard's scans sequential, so aggregate \
         (makespan) throughput should scale with the shard count — and group commit \
         should cut WAL page writes per committed op once >= 4 sessions commit \
         concurrently",
        vec![
            "configuration",
            "reads/writes",
            "ops/s (sim, serial)",
            "ops/s (sim, parallel)",
            "makespan",
            "read p50/p95/p99 (ms)",
            "busy shards",
            "wal flushes/commits",
            "wal pages per write",
            "pool hit",
            "seeks/page",
        ],
    );

    let mut data = ebay(cfg);

    // ---- shard-count sweep at two read/write mixes --------------------
    let mut headline = None;
    let mut par_at = |report: &mut Report, label: &str, read_fraction: f64| -> Vec<(usize, f64)> {
        let wl = workload(&mut data, scale, read_fraction);
        let mut out = Vec::new();
        for &shards in &SHARD_COUNTS {
            let engine = build_engine(&data, shards, GroupCommitConfig::default());
            let r = run_mixed(&engine, &wl).expect("workload runs");
            if shards == 4 && read_fraction > 0.5 {
                headline = Some(crate::report::LatencySummary {
                    p50_ms: r.read_latency.p50_ms,
                    p95_ms: r.read_latency.p95_ms,
                    p99_ms: r.read_latency.p99_ms,
                });
            }
            report.push(format!("{shards} shard(s) {label}"), row_cells(&r));
            out.push((shards, r.ops_per_sim_sec_parallel));
        }
        out
    };
    let read_heavy = par_at(&mut report, "90/10", 0.9);
    let write_heavy = par_at(&mut report, "10/90", 0.1);
    report.latency = headline;

    // ---- group commit vs per-commit flushing at 4 shards, 10/90 -------
    let wl = workload(&mut data, scale, 0.1);
    let mut wal_pages_per_write = Vec::new();
    for (label, gc) in [
        (
            "4 shards 10/90 per-commit WAL",
            GroupCommitConfig::per_commit(),
        ),
        ("4 shards 10/90 group commit", GroupCommitConfig::default()),
    ] {
        let engine = build_engine(&data, 4, gc);
        let r = run_mixed(&engine, &wl).expect("workload runs");
        wal_pages_per_write.push(r.wal.pages_flushed as f64 / r.writes.max(1) as f64);
        report.push(label, row_cells(&r));
    }

    let ratio = |sweep: &[(usize, f64)], shards: usize| -> f64 {
        let base = sweep
            .iter()
            .find(|(s, _)| *s == 1)
            .map(|(_, t)| *t)
            .unwrap_or(1.0);
        sweep
            .iter()
            .find(|(s, _)| *s == shards)
            .map(|(_, t)| *t / base.max(1e-9))
            .unwrap_or(0.0)
    };
    report.commentary = format!(
        "aggregate (makespan) throughput scaling vs 1 shard: {:.1}x at 4 shards / \
         {:.1}x at 8 shards on the 90/10 read-heavy mix, {:.1}x at 4 shards / {:.1}x \
         at 8 shards on the 10/90 write-heavy mix; WAL group commit cut log page \
         writes per committed op from {:.2} to {:.2} at 8 concurrent sessions \
         (4 shards, 10/90)",
        ratio(&read_heavy, 4),
        ratio(&read_heavy, 8),
        ratio(&write_heavy, 4),
        ratio(&write_heavy, 8),
        wal_pages_per_write[0],
        wal_pages_per_write[1],
    );
    report
}
