//! **Figure 10 / Experiment 4** — cost-model accuracy across `c_per_u`.
//!
//! The paper queries `AVG(Price) WHERE CAT5 = X` through a CM on CAT5
//! (strongly correlated with the CATID clustering), picking CAT5 values
//! whose `c_per_u` ranges from 4 to 145, and shows the §4 model tracking
//! the measured runtime across the whole range.

use crate::datasets::{ebay_data, ebay_table, BenchScale};
use crate::report::{ms, Report};
use cm_core::{AttrConstraint, CmSpec};
use cm_cost::CostParams;
use cm_datagen::ebay::COL_CAT5;
use cm_query::{ExecContext, Pred, Query};
use cm_storage::{DiskSim, Value};
use std::collections::HashMap;

/// Run the experiment.
pub fn run(scale: BenchScale) -> Report {
    let data = ebay_data(scale);
    let disk = DiskSim::with_defaults();
    let mut table = ebay_table(&disk, &data);
    let cm = table.add_cm("cat5_cm", CmSpec::single_raw(COL_CAT5));

    // Rank CAT5 values by their clustered-bucket fan-out and pick a
    // spread of percentiles (the paper picks values with c_per_u 4..145).
    let mut fanout: HashMap<Value, usize> = HashMap::new();
    for (key, buckets) in table.cm(cm).iter() {
        if let cm_core::CmKeyPart::Raw(v) = &key[0] {
            // NULL marks categories shallower than level 5 — not a
            // meaningful predicate value.
            if !v.is_null() {
                fanout.insert(v.clone(), buckets.len());
            }
        }
    }
    let mut ranked: Vec<(Value, usize)> = fanout.into_iter().collect();
    ranked.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    // One representative per distinct fan-out, then an even spread over
    // those (the paper picks values with c_per_u 4, 15, 24, 62, 145).
    let mut distinct: Vec<(Value, usize)> = Vec::new();
    for (v, n) in ranked {
        if distinct.last().map(|(_, ln)| *ln) != Some(n) {
            distinct.push((v, n));
        }
    }
    let picks: Vec<(Value, usize)> = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
        .iter()
        .map(|p| distinct[((distinct.len() - 1) as f64 * p) as usize].clone())
        .collect();

    let params = CostParams::new(
        &disk.config(),
        table.heap().tups_per_page(),
        table.heap().len(),
        table.clustered().height(),
    );

    let mut report = Report::new(
        "fig10",
        "Cost model vs measured CM runtime across c_per_u (eBay, CAT5 = X)",
        "runtime is primarily determined by how many clustered values the predicated \
         value maps to; the model tracks measurements across c_per_u from 4 to 145",
        vec![
            "CAT5 value",
            "c_per_u (buckets)",
            "measured",
            "model",
            "model/measured",
        ],
    );

    let mut low_err: f64 = 0.0;
    let mut high_ratio: f64 = 0.0;
    for (v, _) in &picks {
        let q = Query::single(Pred {
            col: COL_CAT5,
            op: cm_query::PredOp::Eq(v.clone()),
        });
        let buckets = table.cm(cm).lookup(&[AttrConstraint::Eq(v.clone())]);
        disk.reset();
        let ctx = ExecContext::cold(&disk);
        let run = table.exec_cm_scan(&ctx, cm, &q);
        let model = params.cost_cm(
            buckets.len() as f64,
            1.0,
            table.dir().avg_pages_per_bucket(),
            table.clustered().height() as f64,
        );
        let ratio = model / run.ms().max(1e-9);
        if buckets.len() <= 8 {
            low_err = low_err.max((ratio - 1.0).abs());
        } else {
            high_ratio = high_ratio.max(ratio);
        }
        report.push(
            v.to_string(),
            vec![
                buckets.len().to_string(),
                ms(run.ms()),
                ms(model),
                format!("{ratio:.2}"),
            ],
        );
    }

    report.commentary = format!(
        "runtime grows with fan-out as in the paper's Figure 10; the model tracks \
         low-fan-out values within {:.0}% and is conservative (up to {:.1}x) at high \
         fan-out, where merged bucket ranges and cached index descents undercut the \
         per-value seek charge — the paper's §4.1 overestimation caveat",
        low_err * 100.0,
        high_ratio.max(1.0),
    );
    report
}
