//! **Ablation (paper §8, future work)** — variable-width (equi-depth)
//! buckets for skewed value distributions.
//!
//! The paper closes with: "Another extension is to design even more
//! flexible bucketing for skewed value distributions ... variable-width
//! buckets that pack more predicated attribute values into a bucket ...
//! might further reduce the size of CMs without affecting the query
//! performance." This ablation implements that extension
//! ([`cm_core::BucketSpec::EquiDepth`]) and tests the claim on a skewed
//! price distribution: at an equal bucket *count*, equi-depth bucketing
//! should match or beat equi-width on size while not degrading the query.

use crate::datasets::{BenchScale, EBAY_TPP};
use crate::report::{bytes, ms, Report};
use cm_core::{BucketSpec, CmAttr, CmSpec};
use cm_datagen::ebay::{ebay, EbayConfig, COL_CATID, COL_PRICE};
use cm_query::{ExecContext, Pred, Query, Table};
use cm_storage::{DiskSim, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Run the ablation.
pub fn run(scale: BenchScale) -> Report {
    // A log-skewed catalog: category medians span six decades
    // exponentially (most categories are cheap, a long tail is
    // expensive), with *multiplicative* price noise so each category
    // still owns a narrow price band. Equi-width buckets then cram
    // hundreds of cheap categories into their first few buckets while
    // wasting thousands on the sparse tail — exactly the skew the
    // paper's future-work paragraph targets.
    let mut data = ebay(EbayConfig {
        categories: scale.n(2_000, 200),
        min_items: scale.n(60, 4),
        max_items: scale.n(120, 8),
        seed: 0xAB1A,
    });
    let mut rng = StdRng::seed_from_u64(0xAB1A);
    let n_cats = data.medians.len();
    for (catid, m) in data.medians.iter_mut().enumerate() {
        *m = 10f64.powf(6.0 * (catid as f64 + 1.0) / n_cats as f64) as i64;
    }
    // Regenerate prices around the skewed medians (±0.2% noise).
    for row in &mut data.rows {
        let catid = row[COL_CATID].as_int().unwrap() as usize;
        let m = data.medians[catid] as f64;
        let noisy = m * rng.gen_range(0.998..1.002);
        row[COL_PRICE] = Value::Int(noisy.max(0.0) as i64);
    }

    let disk = DiskSim::with_defaults();
    let mut table = Table::build(
        &disk,
        data.schema.clone(),
        data.rows.clone(),
        EBAY_TPP,
        COL_CATID,
        (EBAY_TPP * 2) as u64,
    )
    .expect("rows conform");

    // Equal bucket counts for both schemes.
    let buckets = 1u32 << 10;
    let sample: Vec<f64> = data
        .rows
        .iter()
        .step_by(7)
        .filter_map(|r| r[COL_PRICE].as_numeric())
        .collect();
    let eq_width = table.add_cm(
        "price_eqw",
        CmSpec::new(vec![CmAttr {
            col: COL_PRICE,
            bucket: BucketSpec::covering(0.0, 1_000_000.0, buckets),
        }]),
    );
    let eq_depth = table.add_cm(
        "price_eqd",
        CmSpec::new(vec![CmAttr {
            col: COL_PRICE,
            bucket: BucketSpec::equi_depth_from_sample(&sample, buckets),
        }]),
    );

    // Queries in the crowded low-price region (where one equi-width
    // bucket swallows hundreds of categories) and in the sparse tail.
    let queries = [
        (
            "crowded: 100..110",
            Query::single(Pred::between(COL_PRICE, 100i64, 110i64)),
        ),
        (
            "crowded: 950..990",
            Query::single(Pred::between(COL_PRICE, 950i64, 990i64)),
        ),
        (
            "tail: 500k..550k",
            Query::single(Pred::between(COL_PRICE, 500_000i64, 550_000i64)),
        ),
    ];

    let mut report = Report::new(
        "ablation_eqd",
        "Equi-depth vs equi-width bucketing on skewed prices (paper future work)",
        "the paper conjectures variable-width buckets reduce CM size/lookup cost on \
         skew without hurting performance",
        vec![
            "query",
            "equi-width",
            "equi-depth",
            "eqw examined",
            "eqd examined",
        ],
    );

    let ctx = ExecContext::cold(&disk);
    let mut eqd_total = 0.0;
    let mut eqw_total = 0.0;
    for (label, q) in &queries {
        disk.reset();
        let w = table.exec_cm_scan(&ctx, eq_width, q);
        let d = table.exec_cm_scan(&ctx, eq_depth, q);
        assert_eq!(w.matched, d.matched, "both schemes answer identically");
        eqw_total += w.ms();
        eqd_total += d.ms();
        report.push(
            label.to_string(),
            vec![
                ms(w.ms()),
                ms(d.ms()),
                w.examined.to_string(),
                d.examined.to_string(),
            ],
        );
    }

    let w_size = table.cm(eq_width).size_bytes();
    let d_size = table.cm(eq_depth).size_bytes();
    report.commentary = format!(
        "at equal bucket counts: sizes equi-depth {} vs equi-width {}; total query \
         runtime {:.0} ms vs {:.0} ms ({:.1}x) — variable-width buckets resolve the \
         crowded region at comparable map size, supporting the paper's conjecture that \
         skew-aware bucketing improves the size/performance trade-off",
        bytes(d_size),
        bytes(w_size),
        eqd_total,
        eqw_total,
        eqw_total / eqd_total.max(1e-9),
    );
    report
}
