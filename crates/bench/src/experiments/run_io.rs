//! **Vectored run I/O benchmark** — per-query simulated cost of
//! multi-page scans under concurrent sessions sharing one shard disk,
//! vectored run reads vs the per-page baseline.
//!
//! The paper's central performance claim prices a CM-guided lookup as a
//! few *sequential* sweeps of clustered page ranges. Charging every page
//! individually honours that only while one session runs: the moment
//! several sessions share a shard's disk, their per-page charges
//! interleave and every "sequential" page becomes a full-price seek —
//! the head-interleaving effect PR 2 measured *across* shards, recurring
//! *within* one. Vectored run I/O (`DiskSim::read_run`, one critical
//! section per run) restores honest sequential pricing: a run is charged
//! atomically, so concurrency can interleave between runs but never
//! inside one.
//!
//! Sessions here are real threads, but their page charges are arbitrated
//! by a deterministic round-robin turn-taker, so the interleaving (and
//! therefore every number below) is exactly reproducible — the same
//! worst-case page-level interleave a busy shard exhibits, without
//! scheduler noise. The table, row counts, and query shapes match
//! `fanout_latency` (eBay, clustered CATID ranges), measured cold.

use crate::datasets::{BenchScale, EBAY_TPP};
use crate::report::Report;
use cm_core::CmSpec;
use cm_datagen::ebay::{ebay, EbayConfig, COL_CATID};
use cm_query::{ExecContext, Pred, Query, Table};
use cm_storage::{DiskSim, FileId, IoStats, PageAccessor, PerPageIo};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Access paths swept (all forced, all cold).
pub(crate) const PATHS: [&str; 3] = ["full scan", "secondary sorted", "cm scan"];
/// Concurrent session counts swept.
pub(crate) const SESSIONS: [usize; 2] = [1, 8];

/// Deterministic round-robin arbiter: every page charge a session issues
/// waits for that session's turn, executes under the arbiter lock, and
/// passes the turn on. N sessions therefore interleave their charge
/// streams page-for-page (or run-for-run, when the charges are vectored)
/// in a fixed order — the worst-case concurrent interleaving, made
/// reproducible.
struct TurnArbiter {
    state: Mutex<ArbState>,
    cv: Condvar,
}

struct ArbState {
    turn: usize,
    active: Vec<bool>,
}

impl TurnArbiter {
    fn new(sessions: usize) -> Self {
        TurnArbiter {
            state: Mutex::new(ArbState {
                turn: 0,
                active: vec![true; sessions],
            }),
            cv: Condvar::new(),
        }
    }

    fn advance(st: &mut ArbState) {
        let n = st.active.len();
        for step in 1..=n {
            let next = (st.turn + step) % n;
            if st.active[next] {
                st.turn = next;
                return;
            }
        }
    }

    /// Wait for `id`'s turn, run `f` (which issues exactly one charge to
    /// the shared disk), and pass the turn to the next active session.
    fn with_turn(&self, id: usize, f: impl FnOnce()) {
        let mut st = self.state.lock().expect("arbiter lock");
        while st.turn != id {
            st = self.cv.wait(st).expect("arbiter wait");
        }
        f();
        Self::advance(&mut st);
        drop(st);
        self.cv.notify_all();
    }

    /// Deregister a finished session so the rotation skips it.
    fn finish(&self, id: usize) {
        let mut st = self.state.lock().expect("arbiter lock");
        st.active[id] = false;
        if st.turn == id {
            Self::advance(&mut st);
        }
        drop(st);
        self.cv.notify_all();
    }
}

/// One session's handle onto the shared disk: every charge takes a turn.
struct SessionIo<'a> {
    arbiter: &'a TurnArbiter,
    id: usize,
    inner: &'a dyn PageAccessor,
}

impl PageAccessor for SessionIo<'_> {
    fn read(&self, file: FileId, page: u64) {
        self.arbiter
            .with_turn(self.id, || self.inner.read(file, page));
    }
    fn write(&self, file: FileId, page: u64) {
        self.arbiter
            .with_turn(self.id, || self.inner.write(file, page));
    }
    fn read_run(&self, file: FileId, lo: u64, hi: u64) {
        // The whole run is one turn: vectored I/O is atomic.
        self.arbiter
            .with_turn(self.id, || self.inner.read_run(file, lo, hi));
    }
    fn write_run(&self, file: FileId, lo: u64, hi: u64) {
        self.arbiter
            .with_turn(self.id, || self.inner.write_run(file, lo, hi));
    }
}

/// Clustered CATID ranges from ~1/16 to ~1/2 of the table, sliding start
/// — the same shape as `fanout_latency`'s multi-shard sweeps. `n` in
/// total; each session takes a disjoint slice (concurrent sessions run
/// *different* queries — identical lockstep streams would artificially
/// convoy on the same pages and hide the interleaving effect).
pub(crate) fn read_queries(categories: usize, n: usize) -> Vec<Query> {
    let cats = categories as i64;
    (0..n)
        .map(|s| {
            let s = s as i64;
            let span = (cats / 16).max(1) * (1 + s % 8);
            let lo = (s * 613) % (cats - span).max(1);
            Query::single(Pred::between(COL_CATID, lo, lo + span))
        })
        .collect()
}

/// Run each session's disjoint query slice cold through the given
/// charging mode; returns the disk delta and the total matched count.
/// Each session first issues `id` staggered single-page touches, so the
/// round-robin streams are offset like real arrivals instead of starting
/// page-aligned (the stagger cost is identical in both modes).
pub(crate) fn measure(
    table: &Table,
    disk: &std::sync::Arc<DiskSim>,
    queries: &[Query],
    path: &str,
    sessions: usize,
    vectored: bool,
) -> (IoStats, u64) {
    disk.reset();
    let before = disk.stats();
    let arbiter = TurnArbiter::new(sessions);
    let matched = AtomicU64::new(0);
    let per_session = queries.len() / sessions;
    let sec = 0usize; // catid secondary (built first)
    let cm = 0usize; // catid CM (built first)
    std::thread::scope(|scope| {
        for id in 0..sessions {
            let arbiter = &arbiter;
            let matched = &matched;
            scope.spawn(move || {
                let session_io = SessionIo {
                    arbiter,
                    id,
                    inner: disk.as_ref(),
                };
                let per_page = PerPageIo(&session_io);
                let io: &dyn PageAccessor = if vectored { &session_io } else { &per_page };
                let ctx = ExecContext::through(disk, io);
                for p in 0..id as u64 {
                    io.read(table.heap().file_id(), p);
                }
                let mut local = 0u64;
                for q in &queries[id * per_session..(id + 1) * per_session] {
                    let r = match path {
                        "full scan" => table.exec_full_scan(&ctx, q),
                        "secondary sorted" => table
                            .exec_secondary_sorted(&ctx, sec, q)
                            .expect("catid prefix"),
                        _ => table.exec_cm_scan(&ctx, cm, q),
                    };
                    local += r.matched;
                }
                matched.fetch_add(local, Ordering::Relaxed);
                arbiter.finish(id);
            });
        }
    });
    (disk.stats().since(&before), matched.load(Ordering::Relaxed))
}

/// Run the benchmark.
pub fn run(scale: BenchScale) -> Report {
    let cfg = EbayConfig {
        categories: scale.n(2_000, 200),
        min_items: scale.n(100, 10),
        max_items: scale.n(200, 20),
        seed: 0x10A4,
    };

    let mut report = Report::new(
        "run_io",
        "per-query simulated cost of cold multi-page scans under concurrent \
         sessions on one shard disk: vectored run reads vs per-page charging \
         (eBay table at fanout_latency row counts, deterministic round-robin \
         session interleaving, sessions x access path sweep)",
        "per-page charging holds sequential pricing only alone: with 8 sessions \
         interleaving page-by-page, every page of a clustered sweep becomes a \
         full-price seek; vectored runs are charged atomically, so CM and sorted \
         range scans should regain >= 2x lower per-query sim-ms at 8 sessions \
         (and the two modes must touch identical page counts)",
        vec![
            "path x sessions",
            "queries",
            "per-page ms/query",
            "vectored ms/query",
            "speedup",
            "per-page seeks/page",
            "vectored seeks/page",
        ],
    );

    let data = ebay(cfg);
    let disk = DiskSim::with_defaults();
    let mut table = Table::build(
        &disk,
        data.schema.clone(),
        data.rows.clone(),
        EBAY_TPP,
        COL_CATID,
        (EBAY_TPP * 2) as u64,
    )
    .expect("generated rows conform to schema");
    table.add_secondary(&disk, "catid_idx", vec![COL_CATID]);
    table.add_cm("cat_cm", CmSpec::single_raw(COL_CATID));

    let per_session = scale.n(12, 4);

    let mut speedup_cm_8 = 0.0;
    let mut speedup_sorted_8 = 0.0;
    for path in PATHS {
        for sessions in SESSIONS {
            let queries = read_queries(data.category_paths.len(), sessions * per_session);
            let (pp, pp_matched) = measure(&table, &disk, &queries, path, sessions, false);
            let (vec_io, vec_matched) = measure(&table, &disk, &queries, path, sessions, true);
            assert_eq!(pp_matched, vec_matched, "modes must agree on results");
            assert_eq!(
                pp.pages(),
                vec_io.pages(),
                "modes must touch the same pages"
            );
            let n = queries.len() as f64;
            let pp_ms = pp.elapsed_ms / n;
            let vec_ms = vec_io.elapsed_ms / n;
            let speedup = pp_ms / vec_ms.max(1e-9);
            if sessions == 8 && path == "cm scan" {
                speedup_cm_8 = speedup;
            }
            if sessions == 8 && path == "secondary sorted" {
                speedup_sorted_8 = speedup;
            }
            report.push(
                format!("{path} x {sessions} session(s)"),
                vec![
                    format!("{}", queries.len()),
                    format!("{pp_ms:.2}"),
                    format!("{vec_ms:.2}"),
                    format!("{speedup:.2}x"),
                    format!("{:.3}", pp.seeks_per_page()),
                    format!("{:.3}", vec_io.seeks_per_page()),
                ],
            );
        }
    }

    report.commentary = format!(
        "per-query sim-ms speedup of vectored runs over per-page charging at 8 \
         concurrent sessions: {speedup_cm_8:.1}x on cold CM scans, \
         {speedup_sorted_8:.1}x on cold sorted range scans — at 1 session the two \
         modes price identically (the win is pure interleaving immunity, not a \
         cheaper cost model), and both modes touch identical page counts"
    );
    report
}
