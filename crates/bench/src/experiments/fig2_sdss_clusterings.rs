//! **Figure 2** — number of SDSS benchmark queries accelerated ≥2/4/8/16×
//! by each choice of clustered attribute.
//!
//! The paper's benchmark: 39 queries, each a 1%-selectivity predicate on
//! one PhotoObj attribute; the table is clustered 39 ways (once per
//! attribute) and each clustering is scored by how many of the 39 queries
//! a secondary-index scan then beats a table scan by ≥2×, ≥4×, ≥8×, ≥16×.
//! Attribute 1 (fieldID) is correlated with 12 attributes and accelerates
//! 13 queries ≥2× (5 of them ≥16×).

use crate::datasets::BenchScale;
use crate::report::Report;
use cm_datagen::{sdss, SdssConfig};
use cm_storage::{DiskConfig, DiskSim, Value};
use std::collections::BTreeSet;
use std::sync::Arc;

/// A virtual sorted (bitmap) secondary index scan: gathers the matching
/// pages analytically and charges the simulated disk for the index
/// descent plus the page-ordered sweep. Used instead of materializing
/// 39 × 39 real B+Trees — the charged access pattern is identical to
/// `Table::exec_secondary_sorted`, which the integration tests verify at
/// small scale.
fn virtual_sorted_scan_ms(
    disk_cfg: &DiskConfig,
    rows: &[cm_storage::Row],
    tpp: usize,
    col: usize,
    lo: &Value,
    hi: &Value,
) -> f64 {
    let mut pages: BTreeSet<u64> = BTreeSet::new();
    let mut matches = 0u64;
    for (i, row) in rows.iter().enumerate() {
        let v = &row[col];
        if v >= lo && v <= hi {
            pages.insert(i as u64 / tpp as u64);
            matches += 1;
        }
    }
    // Index descent (height ~3) + leaf chain for the matched postings.
    let height = 3.0;
    let leaf_pages = (matches as f64 / 64.0).ceil();
    let mut ms = height * disk_cfg.seek_ms + leaf_pages * disk_cfg.seq_page_ms;
    // Page-ordered heap sweep: contiguous pages cost sequential reads.
    let mut last: Option<u64> = None;
    for &p in &pages {
        ms += if last.is_some() && last == p.checked_sub(1) {
            disk_cfg.seq_page_ms
        } else {
            disk_cfg.seek_ms
        };
        last = Some(p);
    }
    ms
}

/// Run the experiment.
pub fn run(scale: BenchScale) -> Report {
    // Reduced row count: this experiment re-clusters the table 39 times.
    let data = sdss(SdssConfig {
        rows: scale.n_rows(),
        fields: 251,
        stripes: 20,
        seed: 0x5D55,
    });
    let disk = DiskSim::with_defaults();
    let cfg = disk.config();
    let tpp = crate::datasets::SDSS_TPP;

    // The 39 one-attribute queries at 1% selectivity.
    let queries: Vec<(usize, Value, Value)> = data
        .query_attrs
        .iter()
        .map(|&col| {
            let (lo, hi) = data.selectivity_range(col, 0.01, col as u64);
            (col, lo, hi)
        })
        .collect();

    let scan_ms = {
        let pages = (data.rows.len() as f64 / tpp as f64).ceil();
        cfg.seek_ms + (pages - 1.0) * cfg.seq_page_ms
    };

    let mut report = Report::new(
        "fig2",
        "Queries accelerated by clustering choice (SDSS PhotoObj, 39 × 39)",
        "clustering on a well-correlated attribute (fieldID = attr 1) accelerates 13 of \
         39 queries ≥2× and 5 of them ≥16×; uncorrelated attributes accelerate only \
         themselves",
        vec!["clustered attr", ">=2x", ">=4x", ">=8x", ">=16x"],
    );

    let mut best = (0usize, 0usize);
    let schema = data.schema.clone();
    for &cluster_col in &data.query_attrs {
        // Re-cluster: sort rows on the chosen attribute.
        let mut rows = data.rows.clone();
        rows.sort_by(|a, b| a[cluster_col].cmp(&b[cluster_col]));
        let rows = Arc::new(rows);
        let mut counts = [0usize; 4];
        for (qcol, lo, hi) in &queries {
            let ms = virtual_sorted_scan_ms(&cfg, &rows, tpp, *qcol, lo, hi);
            let speedup = scan_ms / ms.max(1e-9);
            for (slot, threshold) in [2.0, 4.0, 8.0, 16.0].iter().enumerate() {
                if speedup >= *threshold {
                    counts[slot] += 1;
                }
            }
        }
        if counts[0] > best.1 {
            best = (cluster_col, counts[0]);
        }
        report.push(
            schema.col_name(cluster_col).to_string(),
            counts.iter().map(|c| c.to_string()).collect(),
        );
    }

    report.commentary = format!(
        "best clustering: {} accelerates {} of {} queries >=2x (table scan = {:.0} ms); \
         position-family clusterings lift the whole family, independents only themselves",
        schema.col_name(best.0),
        best.1,
        queries.len(),
        scan_ms
    );
    report
}

trait Fig2Scale {
    fn n_rows(&self) -> usize;
}
impl Fig2Scale for BenchScale {
    fn n_rows(&self) -> usize {
        self.n(100_000, 3_000)
    }
}
