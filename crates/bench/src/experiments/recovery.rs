//! **Recovery benchmark** — time-to-first-query after a crash, as a
//! function of WAL length and fuzzy-checkpoint interval.
//!
//! Each cell runs the same write-heavy mixed workload (sessions
//! committing every few ops) on a fresh engine, kills it at the durable
//! point, recovers into a new engine, and charges the whole restart to
//! the simulated disk: one sequential sweep over the surviving log plus
//! the redo/undo page traffic. Time-to-first-query is that restart cost
//! plus the first point query on the survivor.
//!
//! Without checkpoints the redo point stays at offset 0 and recovery
//! replays the entire log, so restart cost grows linearly with WAL
//! length. Fuzzy checkpoints (taken automatically every N records,
//! without stopping the writers) advance the redo point and bound the
//! replayed suffix, which is the ARIES argument for checkpointing at
//! all.

use crate::datasets::BenchScale;
use crate::report::{bytes, ms, Report};
use cm_core::CmSpec;
use cm_engine::{run_mixed, Engine, EngineConfig, MixedWorkloadConfig};
use cm_query::{Pred, Query};
use cm_storage::{Column, Row, Schema, Value, ValueType};
use std::sync::Arc;

const CATS: i64 = 100;
const WORKLOAD_SEED: u64 = 0xC4A5;

/// Preload a two-column table and give it one secondary B+Tree and one
/// CM, so recovery also has to replay a design-change record and rebuild
/// the structures.
fn build_engine(config: EngineConfig, base_rows: usize) -> Arc<Engine> {
    let engine = Engine::new(config);
    let schema = Arc::new(Schema::new(vec![
        Column::new("catid", ValueType::Int),
        Column::new("price", ValueType::Int),
    ]));
    engine
        .create_table("items", schema, 0, 20, 100)
        .expect("fresh catalog");
    let rows: Vec<Row> = (0..base_rows as i64)
        .map(|i| {
            let cat = i % CATS;
            vec![Value::Int(cat), Value::Int(cat * 1_000 + (i * 7) % 1_000)]
        })
        .collect();
    engine.load("items", rows).expect("rows conform");
    engine
        .create_btree("items", "price_ix", vec![1])
        .expect("index");
    engine
        .create_cm("items", "cat_cm", CmSpec::single_raw(0))
        .expect("CM");
    engine
}

/// A 30/70 read/write mix: reads are category point queries, writes are
/// fresh rows in a disjoint price range, committed every 24 ops.
fn workload(ops: usize) -> MixedWorkloadConfig {
    let reads: Vec<Query> = (0..16i64)
        .map(|c| Query::single(Pred::eq(0, (c * 13) % CATS)))
        .collect();
    let insert_rows: Vec<Row> = (0..ops as i64)
        .map(|i| vec![Value::Int(i % CATS), Value::Int(1_000_000 + i)])
        .collect();
    MixedWorkloadConfig {
        table: "items".into(),
        reads,
        insert_rows,
        read_fraction: 0.3,
        ops,
        threads: 2,
        commit_every: 24,
        seed: WORKLOAD_SEED,
        advise_after: None,
    }
}

struct Cell {
    wal_bytes: u64,
    records: u64,
    images: usize,
    recover_ms: f64,
    ttfq_ms: f64,
    cells: Vec<String>,
}

/// Run one (WAL length, checkpoint interval) cell: workload, crash at
/// the durable point, recover, first query.
fn run_cell(base_rows: usize, ops: usize, checkpoint_every: u64) -> Cell {
    let config = EngineConfig {
        checkpoint_every,
        ..EngineConfig::default()
    };
    let engine = build_engine(config.clone(), base_rows);
    let wl = workload(ops);
    run_mixed(&engine, &wl).expect("workload runs");
    engine.commit();

    let state = engine.crash_state(None);
    let wal_bytes = state.log.len() as u64;
    let images = engine.checkpoint_count();

    let (recovered, report) = Engine::recover(config, &state).expect("recovery succeeds");
    let q = Query::single(Pred::eq(0, 17i64));
    let first = recovered
        .execute("items", &q)
        .expect("survivor answers queries");
    let ttfq_ms = report.sim_ms + first.run.ms();

    Cell {
        wal_bytes,
        records: report.records,
        images,
        recover_ms: report.sim_ms,
        ttfq_ms,
        cells: vec![
            bytes(wal_bytes),
            report.records.to_string(),
            images.to_string(),
            bytes(report.redo_lsn),
            report.redone.to_string(),
            report.undone.to_string(),
            ms(report.sim_ms),
            ms(ttfq_ms),
        ],
    }
}

/// Run the benchmark.
pub fn run(scale: BenchScale) -> Report {
    let base_rows = scale.n(20_000, 1_000);
    // Growing WAL lengths (ops per run) crossed with three checkpoint
    // policies: none, a coarse interval, and a fine one.
    let op_counts = [
        scale.n(2_000, 150),
        scale.n(6_000, 300),
        scale.n(12_000, 600),
    ];
    let policies: [(&str, u64); 3] = [
        ("no ckpt", 0),
        ("ckpt/coarse", scale.n(6_000, 500) as u64),
        ("ckpt/fine", scale.n(1_200, 120) as u64),
    ];

    let mut report = Report::new(
        "recovery",
        "crash-recovery cost: time-to-first-query vs WAL length and \
         fuzzy-checkpoint interval (redo from the checkpoint's redo point, \
         undo of uncommitted tails)",
        "without checkpoints the whole log is replayed, so restart cost grows \
         linearly with WAL length; fuzzy checkpoints advance the redo point \
         and bound the replayed suffix, holding time-to-first-query roughly \
         flat as the log grows",
        vec![
            "scenario",
            "wal",
            "records",
            "images",
            "redo point",
            "redone",
            "undone",
            "recover (sim)",
            "first query (sim)",
        ],
    );

    // recover_ms per (policy, op-count) for the commentary comparison.
    let mut grid: Vec<Vec<Cell>> = Vec::new();
    for (label, every) in policies {
        let mut row_cells = Vec::new();
        for &ops in &op_counts {
            let cell = run_cell(base_rows, ops, every);
            report.push(format!("{label}, {ops} ops"), cell.cells.clone());
            row_cells.push(cell);
        }
        grid.push(row_cells);
    }

    let no_ckpt = &grid[0];
    let fine = &grid[2];
    let last = op_counts.len() - 1;
    let growth = no_ckpt[last].recover_ms / no_ckpt[0].recover_ms.max(1e-9);
    let speedup = no_ckpt[last].recover_ms / fine[last].recover_ms.max(1e-9);
    report.commentary = format!(
        "with no checkpoints, recovery replays every record ({} over a {} log) \
         and restart cost grows {growth:.1}x across the sweep; fine fuzzy \
         checkpoints ({} images) cut the largest run's recovery to {} — \
         {speedup:.1}x faster, time-to-first-query {} vs {} — while the \
         writers never stopped; workload seed {WORKLOAD_SEED:#x}",
        no_ckpt[last].records,
        bytes(no_ckpt[last].wal_bytes),
        fine[last].images,
        ms(fine[last].recover_ms),
        ms(fine[last].ttfq_ms),
        ms(no_ckpt[last].ttfq_ms),
    );
    report
}
