//! **Fan-out latency benchmark** — per-query latency of multi-shard
//! range queries as the executor worker count grows, at fixed shard
//! counts.
//!
//! PR 2's sharding improved *aggregate* throughput (concurrent sessions
//! stop interleaving one disk head) but left per-query latency flat: a
//! query spanning N shards still ran its legs one after another on the
//! calling thread. The two-phase plan/execute pipeline fans the legs out
//! on the engine's worker pool, so a query's simulated wall-clock drops
//! from the sum of its legs toward its longest leg. This sweep measures
//! that directly: p50/p95/p99 of per-query latency
//! ([`cm_engine::QueryOutcome::parallel_ms`], the legs list-scheduled
//! over the pool) across workers × shards, with the serial sum
//! (`run.ms()`) reported alongside so the win is charged honestly —
//! a 1-worker engine's "parallel" latency *is* the serial sum.

use crate::datasets::{BenchScale, EBAY_TPP};
use crate::report::{LatencySummary, Report};
use cm_core::CmSpec;
use cm_datagen::ebay::{ebay, EbayConfig, EbayData, COL_CATID, COL_PRICE};
use cm_engine::{Engine, EngineConfig, LatencyStats};
use cm_query::{Pred, Query};

/// Total pool pages, divided across shards (equal RAM per config).
const POOL_PAGES: usize = 512;
/// Shard counts swept.
const SHARD_COUNTS: [usize; 3] = [2, 4, 8];
/// Worker counts swept at each shard count.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn build_engine(data: &EbayData, shards: usize, workers: usize) -> std::sync::Arc<Engine> {
    let engine = Engine::new(EngineConfig {
        pool_pages: POOL_PAGES,
        shards,
        workers,
        ..EngineConfig::default()
    });
    engine
        .create_table(
            "items",
            data.schema.clone(),
            COL_CATID,
            EBAY_TPP,
            (EBAY_TPP * 2) as u64,
        )
        .expect("fresh catalog");
    engine
        .load("items", data.rows.clone())
        .expect("rows conform");
    engine
        .create_cm("items", "cat_cm", CmSpec::single_raw(COL_CATID))
        .expect("CM");
    engine
        .create_cm("items", "price_cm", CmSpec::single_pow2(COL_PRICE, 12))
        .expect("CM");
    engine
}

/// The query mix whose tail the fan-out should shorten: mostly wide
/// clustered CATID ranges spanning several shards (each leg a clustered
/// sweep of its shard), plus Price lookups that fan out to every shard
/// through the CM.
fn read_queries(categories: usize, scale: BenchScale) -> Vec<Query> {
    let cats = categories as i64;
    (0..scale.n(240, 36))
        .map(|s| {
            let s = s as i64;
            if s % 3 == 2 {
                let p = (s * 7919) % 1_000_000;
                Query::single(Pred::between(COL_PRICE, p, p + 2_000))
            } else {
                // Widths from ~1/16 of the table up to ~1/2, sliding start.
                let span = (cats / 16).max(1) * (1 + s % 8);
                let lo = (s * 613) % (cats - span).max(1);
                Query::single(Pred::between(COL_CATID, lo, lo + span))
            }
        })
        .collect()
}

/// Execute every query once on a cold session (reads charge straight to
/// the shard disks — deterministic, no pool state carried between
/// configurations) and collect per-query latency samples: the fan-out
/// makespan and the serial per-shard sum.
fn measure(engine: &std::sync::Arc<Engine>, queries: &[Query]) -> (LatencyStats, LatencyStats) {
    let mut session = engine.session();
    session.set_cold_reads(true);
    let mut parallel = Vec::with_capacity(queries.len());
    let mut serial = Vec::with_capacity(queries.len());
    for q in queries {
        let out = session.execute("items", q).expect("query runs");
        parallel.push(out.parallel_ms);
        serial.push(out.run.ms());
    }
    (
        LatencyStats::from_samples(parallel),
        LatencyStats::from_samples(serial),
    )
}

/// Run the benchmark.
pub fn run(scale: BenchScale) -> Report {
    let cfg = EbayConfig {
        categories: scale.n(2_000, 200),
        min_items: scale.n(100, 3),
        max_items: scale.n(200, 8),
        seed: 0xFA40,
    };

    let mut report = Report::new(
        "fanout_latency",
        "per-query latency of multi-shard range queries vs executor workers \
         (range-partitioned eBay table, cost-routed cold reads, workers x shards sweep)",
        "sharding alone leaves per-query latency at the sum of the per-shard legs; \
         executing the legs on a worker pool should shrink a multi-shard query's \
         latency toward its longest leg — roughly min(workers, shards)x at the p99, \
         which is dominated by the widest all-shard ranges",
        vec![
            "configuration",
            "queries",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "p99 serial (ms)",
            "p99 speedup vs 1 worker",
        ],
    );

    let data = ebay(cfg);
    let queries = read_queries(data.category_paths.len(), scale);

    let mut headline: Option<LatencySummary> = None;
    let mut speedup_4w_4s = 0.0;
    let mut speedup_8w_8s = 0.0;
    for &shards in &SHARD_COUNTS {
        let mut base_p99 = f64::NAN;
        for &workers in &WORKER_COUNTS {
            let engine = build_engine(&data, shards, workers);
            let (par, ser) = measure(&engine, &queries);
            if workers == 1 {
                base_p99 = par.p99_ms;
            }
            let speedup = base_p99 / par.p99_ms.max(1e-9);
            if shards == 4 && workers == 4 {
                speedup_4w_4s = speedup;
                headline = Some(LatencySummary {
                    p50_ms: par.p50_ms,
                    p95_ms: par.p95_ms,
                    p99_ms: par.p99_ms,
                });
            }
            if shards == 8 && workers == 8 {
                speedup_8w_8s = speedup;
            }
            report.push(
                format!("{shards} shards x {workers} worker(s)"),
                vec![
                    par.count.to_string(),
                    format!("{:.2}", par.p50_ms),
                    format!("{:.2}", par.p95_ms),
                    format!("{:.2}", par.p99_ms),
                    format!("{:.2}", ser.p99_ms),
                    format!("{speedup:.2}x"),
                ],
            );
        }
    }

    report.latency = headline;
    report.commentary = format!(
        "p99 per-query latency speedup vs a 1-worker engine at the same shard count: \
         {speedup_4w_4s:.1}x at 4 workers / 4 shards, {speedup_8w_8s:.1}x at 8 workers / \
         8 shards — single-shard point legs are untouched (sequential fast path), the \
         win is the wide multi-shard ranges that dominate the tail"
    );
    report
}
