//! **MVCC benchmark** — reader tail latency under categorical write
//! bursts: single-version shard locking vs MVCC snapshot reads.
//!
//! The workload is the pathology the MVCC layer exists for. Writer
//! threads replace a contiguous *range* of categories per burst
//! (one ranged `delete_where` + a batched reinsert of the same rows,
//! committed together, then a short sleep); reader threads fire point
//! queries on the clustered column and time each one with a wall clock.
//! Under single-version locking the ranged delete scans the *whole
//! shard under its write lock* and maintains the secondary per victim,
//! so every concurrent reader of that shard stalls for the scan; under
//! MVCC the victim scan runs at a snapshot under the shard *read* lock
//! and the write lock is held only to stamp the victims, so readers
//! never wait on a scan. The sweep crosses write pressure (0/1/4 writer
//! threads) with shard counts, plus one row per mode where the "writer"
//! is a loop of `apply_design` structure rebuilds — offline (whole-shard
//! write locks) vs online (snapshot build + brief swap).

use crate::datasets::{BenchScale, EBAY_TPP};
use crate::report::Report;
use cm_datagen::ebay::{ebay, EbayConfig, EbayData, COL_CATID, COL_PRICE};
use cm_engine::{ColumnDesign, DesignSet, Engine, EngineConfig, LatencyStats, Structure};
use cm_query::{Pred, Query};
use cm_storage::{Row, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

const POOL_PAGES: usize = 2048;
const SHARD_COUNTS: [usize; 2] = [1, 4];
const WRITER_COUNTS: [usize; 3] = [0, 1, 4];
/// Consecutive categories one write burst replaces. Ranges this wide
/// (several hundred rows) are what makes the single-version delete's
/// write-lock hold long enough to matter.
const BURST_CATS: usize = 8;

/// The categories and their row batches, extracted once from the
/// generated table so every burst reinserts exactly what it purged.
struct Churn {
    cats: Vec<i64>,
    rows_by_cat: BTreeMap<i64, Vec<Row>>,
}

fn churn_plan(data: &EbayData) -> Churn {
    let mut rows_by_cat: BTreeMap<i64, Vec<Row>> = BTreeMap::new();
    for row in &data.rows {
        if let Value::Int(cat) = row[COL_CATID] {
            rows_by_cat.entry(cat).or_default().push(row.clone());
        }
    }
    Churn {
        cats: rows_by_cat.keys().copied().collect(),
        rows_by_cat,
    }
}

fn build_engine(data: &EbayData, shards: usize, mvcc: bool) -> Arc<Engine> {
    let engine = Engine::new(EngineConfig {
        pool_pages: POOL_PAGES,
        shards,
        mvcc,
        // Vacuum every few hundred deletes: dead versions never pile
        // past a few percent of the heap, and the chunked reclaim keeps
        // each pass's per-hold stall bounded.
        gc_every: if mvcc { 512 } else { 0 },
        ..EngineConfig::default()
    });
    engine
        .create_table(
            "items",
            data.schema.clone(),
            COL_CATID,
            EBAY_TPP,
            (EBAY_TPP * 2) as u64,
        )
        .expect("fresh catalog");
    engine
        .load("items", data.rows.clone())
        .expect("rows conform");
    // A secondary on the price column: categorical deletes must maintain
    // it under the write lock in locking mode, widening the hold — MVCC
    // defers that erase work to vacuum.
    engine
        .create_btree("items", "price_ix", vec![COL_PRICE])
        .expect("index");
    // Touch the read path once so lazy per-table state (planner stats,
    // pool warmup) is charged to nobody's latency sample.
    for cat in data.rows.iter().step_by(97).take(32) {
        if let Value::Int(c) = cat[COL_CATID] {
            engine
                .execute("items", &Query::single(Pred::eq(COL_CATID, c)))
                .expect("warmup");
        }
    }
    engine
}

/// What one concurrent run measured.
struct RunResult {
    read: LatencyStats,
    /// Completed writer bursts (or design rebuilds for the redesign rows).
    bursts: u64,
    /// Rows the bursts replaced.
    churned: u64,
    /// Mean shard-read-lock wait per timed read (µs), from the engine's
    /// own stall counters. Unlike the wall-clock percentiles this is
    /// immune to scheduler preemption noise on starved hosts: it times
    /// exactly the lock acquisitions, which is the thing MVCC changes.
    lock_wait_us_per_read: f64,
    /// Acquisitions that waited past [`Engine::STALL_FLOOR`] — observed
    /// reader stalls.
    stalls: u64,
    /// Longest single lock wait (ms).
    max_wait_ms: f64,
}

/// Engine stall-counter deltas across a closure, folded into a
/// [`RunResult`] with the wall-clock samples.
fn with_stall_delta(
    engine: &Arc<Engine>,
    body: impl FnOnce() -> (Vec<f64>, u64, u64),
) -> RunResult {
    let before = engine.stats();
    let (samples, bursts, churned) = body();
    let after = engine.stats();
    let n = samples.len().max(1) as f64;
    RunResult {
        read: LatencyStats::from_samples(samples),
        bursts,
        churned,
        lock_wait_us_per_read: (after.read_stall_ms - before.read_stall_ms) * 1e3 / n,
        stalls: after.read_stalls - before.read_stalls,
        // The engine tracks a lifetime max; every run gets a fresh engine
        // whose warmup is single-threaded, so this is the run's max.
        max_wait_ms: after.read_stall_max_ms,
    }
}

/// Readers time `reads_each` point queries each while `writers` threads
/// churn disjoint category slices until the readers finish.
fn measure_mix(
    engine: &Arc<Engine>,
    churn: &Churn,
    writers: usize,
    readers: usize,
    reads_each: usize,
) -> RunResult {
    with_stall_delta(engine, || {
        let stop = AtomicBool::new(false);
        let bursts = AtomicU64::new(0);
        let churned = AtomicU64::new(0);
        let samples = std::thread::scope(|scope| {
            for w in 0..writers {
                let session = engine.session();
                let stop = &stop;
                let bursts = &bursts;
                let churned = &churned;
                // Contiguous per-writer category blocks: each burst
                // purges a clustered *range* of categories, the
                // categorical-delete shape whose victim count makes the
                // single-version write-lock hold (scan + per-row index
                // maintenance) genuinely long.
                let lo = w * churn.cats.len() / writers;
                let hi = (w + 1) * churn.cats.len() / writers;
                let mine = &churn.cats[lo..hi];
                let rows_by_cat = &churn.rows_by_cat;
                scope.spawn(move || {
                    let mut k = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let start = (k * BURST_CATS) % mine.len();
                        let end = (start + BURST_CATS).min(mine.len());
                        k += 1;
                        let victims = session
                            .delete_where(
                                "items",
                                &Query::single(Pred::between(
                                    COL_CATID,
                                    mine[start],
                                    mine[end - 1],
                                )),
                            )
                            .expect("categorical delete");
                        // Batched reinsert: chunked shard-lock holds, and
                        // the commit covers the delete too (same open
                        // transaction).
                        let mut replacement = Vec::with_capacity(victims.len());
                        for cat in &mine[start..end] {
                            replacement.extend(rows_by_cat[cat].iter().cloned());
                        }
                        session
                            .insert_many("items", replacement)
                            .expect("reinsert");
                        bursts.fetch_add(1, Ordering::Relaxed);
                        churned.fetch_add(victims.len() as u64, Ordering::Relaxed);
                        // Bursty, not a busy-loop: real ingest arrives in
                        // batches with gaps. A saturating writer spin on
                        // a small host would drown both modes in
                        // scheduler preemption and measure the OS, not
                        // the locking protocol.
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                });
            }
            let handles: Vec<_> = (0..readers)
                .map(|r| {
                    let session = engine.session();
                    let cats = &churn.cats;
                    scope.spawn(move || {
                        let mut seed = 0x9E37_79B9_7F4A_7C15u64
                            ^ (r as u64).wrapping_mul(0xA24B_AED4_963E_E407);
                        let mut samples = Vec::with_capacity(reads_each);
                        // A short untimed ramp so the first timed read isn't
                        // paying thread-start or cold-cache costs.
                        for k in 0..reads_each + reads_each / 8 {
                            seed = seed
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                            let cat = cats[(seed >> 33) as usize % cats.len()];
                            let q = Query::single(Pred::eq(COL_CATID, cat));
                            let t0 = Instant::now();
                            session.execute("items", &q).expect("point read");
                            if k >= reads_each / 8 {
                                samples.push(t0.elapsed().as_secs_f64() * 1e3);
                            }
                        }
                        samples
                    })
                })
                .collect();
            let mut all = Vec::new();
            for h in handles {
                all.extend(h.join().expect("reader thread"));
            }
            stop.store(true, Ordering::Relaxed);
            all
        });
        (
            samples,
            bursts.load(Ordering::Relaxed),
            churned.load(Ordering::Relaxed),
        )
    })
}

/// The structure set the redesign loop rebuilds: a B+Tree plus a CM, so
/// each `apply_design` round sorts the whole table and walks every heap
/// page. Costs are irrelevant to `apply_design` and left zero.
fn redesign_target() -> DesignSet {
    let columns = vec![
        ColumnDesign {
            col: 4,
            structure: Structure::Cm(cm_core::CmSpec::single_raw(4)),
            cold_read_ms: 0.0,
            maintenance_ms: 0.0,
        },
        ColumnDesign {
            col: COL_PRICE,
            structure: Structure::BTree,
            cold_read_ms: 0.0,
            maintenance_ms: 0.0,
        },
    ];
    DesignSet {
        columns,
        read_ms: 0.0,
        write_ms: 0.0,
        total_ms: 0.0,
        working_set_pages: 0.0,
        miss_rate: 0.0,
    }
}

/// Readers time point queries for as long as one thread takes to
/// re-apply the same design `rounds` times (every round rebuilds the
/// B+Tree and the CM from the heap), so the sample window is guaranteed
/// to overlap the rebuilds whatever their duration.
fn measure_redesign(engine: &Arc<Engine>, churn: &Churn, readers: usize, rounds: u64) -> RunResult {
    // Per-reader cap so a long rebuild can't grow samples unboundedly.
    const MAX_SAMPLES: usize = 50_000;
    with_stall_delta(engine, || {
        let stop = AtomicBool::new(false);
        let samples = std::thread::scope(|scope| {
            {
                let engine = engine.clone();
                let stop = &stop;
                scope.spawn(move || {
                    let design = redesign_target();
                    for _ in 0..rounds {
                        engine.apply_design("items", &design).expect("redesign");
                    }
                    stop.store(true, Ordering::Relaxed);
                });
            }
            let handles: Vec<_> = (0..readers)
                .map(|r| {
                    let session = engine.session();
                    let cats = &churn.cats;
                    let stop = &stop;
                    scope.spawn(move || {
                        let mut seed = 0xD1B5_4A32_D192_ED03u64.wrapping_add(r as u64);
                        let mut samples = Vec::new();
                        while !stop.load(Ordering::Relaxed) && samples.len() < MAX_SAMPLES {
                            seed = seed
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                            let cat = cats[(seed >> 33) as usize % cats.len()];
                            let q = Query::single(Pred::eq(COL_CATID, cat));
                            let t0 = Instant::now();
                            session.execute("items", &q).expect("point read");
                            samples.push(t0.elapsed().as_secs_f64() * 1e3);
                        }
                        samples
                    })
                })
                .collect();
            let mut all = Vec::new();
            for h in handles {
                all.extend(h.join().expect("reader thread"));
            }
            all
        });
        (samples, rounds, 0)
    })
}

fn mode_name(mvcc: bool) -> &'static str {
    if mvcc {
        "mvcc"
    } else {
        "locking"
    }
}

fn row_cells(r: &RunResult) -> Vec<String> {
    vec![
        r.read.count.to_string(),
        r.bursts.to_string(),
        r.churned.to_string(),
        format!("{:.3}", r.read.p50_ms),
        format!("{:.3}", r.read.p95_ms),
        format!("{:.3}", r.read.p99_ms),
        format!("{:.3}", r.read.max_ms),
        format!("{:.1}", r.lock_wait_us_per_read),
        r.stalls.to_string(),
        format!("{:.3}", r.max_wait_ms),
    ]
}

/// Run the benchmark.
pub fn run(scale: BenchScale) -> Report {
    // The smoke table must stay big enough that a categorical delete's
    // whole-shard scan is a *material* write-lock hold — on a tiny heap
    // the hold shrinks below the fixed costs both modes share and the
    // contrast this benchmark exists to show disappears.
    let data = ebay(EbayConfig {
        categories: scale.n(800, 400),
        min_items: scale.n(80, 60),
        max_items: scale.n(160, 120),
        seed: 0x51AB,
    });
    let churn = churn_plan(&data);
    let readers = scale.n(2, 1);
    let reads_each = scale.n(1_500, 400);

    let mut report = Report::new(
        "mvcc_reads",
        "reader tail latency under categorical write bursts \
         (single-version shard locking vs MVCC snapshot reads)",
        "not a paper artifact — an engine-level property the versioned heap must \
         deliver: a categorical delete under single-version locking scans the \
         whole shard while holding its write lock, so concurrent readers absorb \
         the scan into their tail; with MVCC the victim scan runs at a snapshot \
         under the read lock and the write lock is held only to stamp the \
         victims, so the reader tail should barely move as write pressure rises \
         (and a structure rebuild should stop being an outage)",
        vec![
            "configuration",
            "reads",
            "bursts",
            "rows churned",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "max (ms)",
            "lock wait/read (µs)",
            "stalls >50µs",
            "max wait (ms)",
        ],
    );

    // (mvcc, shards, writers) -> (p99 ms, lock wait per read µs), for the
    // headline ratios.
    let mut measured = BTreeMap::new();
    for mvcc in [false, true] {
        for shards in SHARD_COUNTS {
            for writers in WRITER_COUNTS {
                let engine = build_engine(&data, shards, mvcc);
                let r = measure_mix(&engine, &churn, writers, readers, reads_each);
                measured.insert(
                    (mvcc, shards, writers),
                    (r.read.p99_ms, r.lock_wait_us_per_read),
                );
                if mvcc && shards == 1 && writers == *WRITER_COUNTS.last().expect("non-empty") {
                    report.latency = Some(crate::report::LatencySummary {
                        p50_ms: r.read.p50_ms,
                        p95_ms: r.read.p95_ms,
                        p99_ms: r.read.p99_ms,
                    });
                }
                report.push(
                    format!(
                        "{} {}-shard, {} writer{}",
                        mode_name(mvcc),
                        shards,
                        writers,
                        if writers == 1 { "" } else { "s" }
                    ),
                    row_cells(&r),
                );
            }
        }
    }
    let mut redesign = BTreeMap::new();
    for mvcc in [false, true] {
        let shards = *SHARD_COUNTS.last().expect("non-empty");
        let engine = build_engine(&data, shards, mvcc);
        let r = measure_redesign(&engine, &churn, readers, 3);
        report.push(
            format!("{} {}-shard, redesign loop", mode_name(mvcc), shards),
            row_cells(&r),
        );
        redesign.insert(mvcc, r);
    }

    // The headline and the PR's acceptance gate, asserted at both scales
    // so the CI smoke run enforces it: at the write-heaviest point (one
    // shard, max writers) MVCC must at least halve the reader p99 — and
    // the mechanism behind the improvement must be visible in the
    // engine's own lock-wait counters, which time exactly the reader
    // lock acquisitions and are therefore immune to what the host's
    // scheduler does to the wall clock.
    let heavy_writers = *WRITER_COUNTS.last().expect("non-empty");
    let (lock_heavy_p99, lock_heavy_wait) = measured[&(false, 1, heavy_writers)];
    let (mvcc_heavy_p99, mvcc_heavy_wait) = measured[&(true, 1, heavy_writers)];
    let p99_ratio = lock_heavy_p99 / mvcc_heavy_p99.max(1e-9);
    assert!(
        p99_ratio >= 2.0,
        "MVCC must at least halve the contended read p99 \
         (got {p99_ratio:.2}x: locking {lock_heavy_p99:.3} ms vs \
         mvcc {mvcc_heavy_p99:.3} ms)"
    );
    let wait_ratio = lock_heavy_wait / mvcc_heavy_wait.max(1e-3);
    assert!(
        wait_ratio >= 2.0,
        "MVCC must cut the contended reader lock wait at least 2x \
         (got {wait_ratio:.2}x: locking {lock_heavy_wait:.1} µs/read vs \
         mvcc {mvcc_heavy_wait:.1} µs/read)"
    );
    let (mvcc_idle_p99, _) = measured[&(true, 1, 0)];
    report.commentary = format!(
        "at 1 shard under {heavy_writers} writers the reader p99 is \
         {lock_heavy_p99:.3} ms under locking vs {mvcc_heavy_p99:.3} ms under \
         MVCC ({p99_ratio:.1}x), and the mean shard-lock wait per read drops \
         from {lock_heavy_wait:.1} µs to {mvcc_heavy_wait:.1} µs \
         ({wait_ratio:.0}x less blocking); the MVCC read-only baseline p99 is \
         {mvcc_idle_p99:.3} ms; with an apply_design rebuild loop instead of \
         writers, readers observed {} stalls >50µs during offline rebuilds vs \
         {} during online MVCC rebuilds (p99 {:.3} ms vs {:.3} ms)",
        redesign[&false].stalls,
        redesign[&true].stalls,
        redesign[&false].read.p99_ms,
        redesign[&true].read.p99_ms,
    );
    report
}
