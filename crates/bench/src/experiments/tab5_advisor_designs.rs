//! **Table 5** — advisor-estimated CM designs for the SX6 query, sorted
//! by estimated slowdown vs. the best design, with size ratios against
//! the dense secondary B+Tree.
//!
//! The paper: the best design (0%) is the full composite at fine
//! bucketing with 100% relative size; coarser/narrower designs trade a
//! few percent of runtime for order-of-magnitude size reductions (+7% →
//! 1.4%, +10% → 0.8%); the advisor recommends the smallest design within
//! the user's threshold.

use crate::datasets::{sdss_data, sdss_table, BenchScale};
use crate::report::{bytes, Report};
use cm_advisor::{Advisor, AdvisorConfig};
use cm_datagen::sdss::{COL_FIELDID, COL_MODE, COL_OBJID, COL_PSFMAG_G, COL_TYPE};
use cm_query::{Pred, Query};
use cm_storage::{DiskSim, Value};

/// The SX6-style training query: two fieldID values, mode = 1, type = 3,
/// psfMag_g < 20 (the paper's SX6 selects on exactly these attributes).
pub fn sx6_query() -> Query {
    Query::new(vec![
        Pred::is_in(COL_FIELDID, vec![Value::Int(60), Value::Int(170)]),
        Pred::eq(COL_MODE, 1i64),
        Pred::eq(COL_TYPE, 3i64),
        Pred::between(COL_PSFMAG_G, 14.0, 20.0),
    ])
}

/// Run the experiment.
pub fn run(scale: BenchScale) -> Report {
    let data = sdss_data(scale);
    let disk = DiskSim::with_defaults();
    let mut table = sdss_table(&disk, &data, COL_OBJID);
    table.analyze_cols(&[COL_FIELDID, COL_MODE, COL_TYPE, COL_PSFMAG_G]);

    let advisor = Advisor::new(AdvisorConfig {
        sample_size: scale.n(30_000, 2_000),
        ..AdvisorConfig::default()
    });
    let rec = advisor.recommend(&table, &disk.config(), &sx6_query(), 0.10);

    let mut report = Report::new(
        "tab5",
        "Advisor CM designs for SX6: estimated slowdown vs size ratio",
        "designs span 0% slowdown at 100% relative size down to ~+10% at <1%; the \
         advisor recommends the smallest design within the 10% threshold",
        vec!["slowdown", "design", "size", "size ratio", "est c_per_u"],
    );

    let schema = table.heap().schema();
    for d in rec.designs.iter().take(12) {
        report.push(
            format!("{:+.0}%", d.slowdown * 100.0),
            vec![
                d.design.label(schema),
                bytes(d.size_bytes as u64),
                format!("{:.2}%", d.size_ratio * 100.0),
                format!("{:.1}", d.c_per_u),
            ],
        );
    }
    report.preformatted = Some(rec.table5(schema, 12));

    let chosen = rec.chosen_design();
    report.commentary = match chosen {
        Some(c) => format!(
            "recommended: [{}] at {:+.0}% slowdown, {} ({:.2}% of the {} B+Tree)",
            c.design.label(schema),
            c.slowdown * 100.0,
            bytes(c.size_bytes as u64),
            c.size_ratio * 100.0,
            bytes(rec.btree_size_bytes as u64),
        ),
        None => "no design within threshold".into(),
    };
    report
}
