//! **Figure 1** — access patterns in `lineitem` for an unclustered
//! B+Tree lookup with and without a correlated clustered attribute.
//!
//! The paper's strips: lookups of 3 `suppkey` values touch scattered
//! pages when the table is unclustered but small sequential groups when
//! clustered on the correlated `partkey`; lookups of 3 `shipdate` values
//! collapse to "a handful of large seeks" when clustered on
//! `receiptdate` (~1/20th the access cost).

use crate::datasets::{tpch_data, tpch_table, BenchScale};
use crate::report::Report;
use cm_datagen::tpch::{COL_ORDERKEY, COL_PARTKEY, COL_RECEIPTDATE, COL_SHIPDATE, COL_SUPPKEY};
use cm_query::Table;
use cm_storage::{DiskSim, Value};
use std::collections::BTreeSet;

/// Width of the rendered strip in characters.
const STRIP_WIDTH: usize = 100;

/// Pages touched by a lookup of `values` on `col`, plus contiguity stats.
fn touched_pages(table: &Table, col: usize, values: &[Value]) -> BTreeSet<u64> {
    let mut pages = BTreeSet::new();
    for (rid, row) in table.heap().iter() {
        if values.contains(&row[col]) {
            pages.insert(table.heap().page_of(rid));
        }
    }
    pages
}

fn strip(pages: &BTreeSet<u64>, total_pages: u64) -> String {
    let mut s = vec!['.'; STRIP_WIDTH];
    for &p in pages {
        let pos = (p as usize * STRIP_WIDTH / total_pages.max(1) as usize).min(STRIP_WIDTH - 1);
        s[pos] = '#';
    }
    s.into_iter().collect()
}

fn runs(pages: &BTreeSet<u64>) -> usize {
    let mut runs = 0;
    let mut last: Option<u64> = None;
    for &p in pages {
        if last != p.checked_sub(1) && last != Some(p) {
            runs += 1;
        }
        last = Some(p);
    }
    runs
}

/// Run the experiment.
pub fn run(scale: BenchScale) -> Report {
    let data = tpch_data(scale);
    let disk = DiskSim::with_defaults();

    // Four layouts of the same rows.
    let by_partkey = tpch_table(&disk, &data, COL_PARTKEY);
    let by_receipt = tpch_table(&disk, &data, COL_RECEIPTDATE);
    let by_pk = tpch_table(&disk, &data, COL_ORDERKEY);

    // 3 suppkey values and 3 shipdate values present in the data.
    let suppkeys: Vec<Value> = (0..3)
        .map(|i| data.rows[i * data.rows.len() / 3][COL_SUPPKEY].clone())
        .collect();
    let shipdates = data.random_shipdates(3, 0xF1);

    let mut report = Report::new(
        "fig1",
        "Access patterns for unclustered lookups (lineitem)",
        "with correlation the sorted index scan visits a few sequential page groups; \
         without it, pages scatter — receiptdate clustering cuts the shipdate access \
         cost to ~1/20th",
        vec!["case", "pages touched", "contiguous runs"],
    );

    let cases = [
        (
            "suppkey | clustered partkey   ",
            &by_partkey,
            COL_SUPPKEY,
            &suppkeys,
        ),
        (
            "suppkey | unclustered (pk)    ",
            &by_pk,
            COL_SUPPKEY,
            &suppkeys,
        ),
        (
            "shipdate | clustered receiptdt",
            &by_receipt,
            COL_SHIPDATE,
            &shipdates,
        ),
        (
            "shipdate | unclustered (pk)   ",
            &by_pk,
            COL_SHIPDATE,
            &shipdates,
        ),
    ];

    let mut strips = String::new();
    let mut stats: Vec<(usize, usize)> = Vec::new();
    for (label, table, col, values) in &cases {
        let pages = touched_pages(table, *col, values);
        strips.push_str(&format!(
            "{label}  {}\n",
            strip(&pages, table.heap().num_pages())
        ));
        stats.push((pages.len(), runs(&pages)));
        report.push(
            label.trim().to_string(),
            vec![pages.len().to_string(), runs(&pages).to_string()],
        );
    }
    report.preformatted = Some(strips);

    // Shape checks baked into the commentary.
    let (supp_cl, supp_un) = (stats[0], stats[1]);
    let (ship_cl, ship_un) = (stats[2], stats[3]);
    report.commentary = format!(
        "clustered-correlated lookups form {}x fewer runs for suppkey ({} vs {}) and {}x \
         fewer for shipdate ({} vs {}), reproducing the paper's strips",
        (supp_un.1 as f64 / supp_cl.1.max(1) as f64).round(),
        supp_cl.1,
        supp_un.1,
        (ship_un.1 as f64 / ship_cl.1.max(1) as f64).round(),
        ship_cl.1,
        ship_un.1,
    );
    report
}
