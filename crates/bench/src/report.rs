//! Experiment reports: tabular results with paper context, renderable as
//! console text or `EXPERIMENTS.md` sections.

/// One row of an experiment table: a label plus numeric cells.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (e.g. "n=10", "bucket=13").
    pub label: String,
    /// Cell values aligned with [`Report::columns`].
    pub cells: Vec<String>,
}

impl Row {
    /// Build a row from a label and formatted cells.
    pub fn new(label: impl Into<String>, cells: Vec<String>) -> Self {
        Row {
            label: label.into(),
            cells,
        }
    }
}

/// Headline per-query latency percentiles for experiments that measure
/// latency distributions (populated from the workload driver's
/// full-sample percentiles).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Median per-query latency (simulated ms).
    pub p50_ms: f64,
    /// 95th percentile (simulated ms).
    pub p95_ms: f64,
    /// 99th percentile (simulated ms).
    pub p99_ms: f64,
}

/// A reproduced table/figure.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id ("fig3", "tab5", ...).
    pub id: String,
    /// Human title.
    pub title: String,
    /// What the paper reports for this artifact (the expectation the
    /// measurement is checked against).
    pub paper_expectation: String,
    /// What we measured / how to read the table.
    pub commentary: String,
    /// Column headers (first column is the row label).
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Row>,
    /// Optional free-form preformatted block (e.g. Figure 1's access
    /// strips, Table 4/5 listings).
    pub preformatted: Option<String>,
    /// Optional headline latency percentiles (experiments that measure
    /// per-query latency set this; throughput-only reports leave it
    /// `None`).
    pub latency: Option<LatencySummary>,
}

impl Report {
    /// A new empty report.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        paper_expectation: impl Into<String>,
        columns: Vec<&str>,
    ) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            paper_expectation: paper_expectation.into(),
            commentary: String::new(),
            columns: columns.into_iter().map(String::from).collect(),
            rows: Vec::new(),
            preformatted: None,
            latency: None,
        }
    }

    /// Append a data row.
    pub fn push(&mut self, label: impl Into<String>, cells: Vec<String>) {
        self.rows.push(Row::new(label, cells));
    }

    /// Render as console text.
    pub fn to_text(&self) -> String {
        let mut out = format!("== {} — {} ==\n", self.id, self.title);
        out.push_str(&format!("paper: {}\n", self.paper_expectation));
        if !self.commentary.is_empty() {
            out.push_str(&format!("measured: {}\n", self.commentary));
        }
        if let Some(l) = &self.latency {
            out.push_str(&format!(
                "latency: p50 {} / p95 {} / p99 {}\n",
                ms(l.p50_ms),
                ms(l.p95_ms),
                ms(l.p99_ms)
            ));
        }
        out.push('\n');
        if let Some(pre) = &self.preformatted {
            out.push_str(pre);
            out.push('\n');
        }
        if !self.columns.is_empty() && !self.rows.is_empty() {
            out.push_str(&self.render_table());
        }
        out
    }

    /// Render as a Markdown section for `EXPERIMENTS.md`.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## {} — {}\n\n", self.id, self.title);
        out.push_str(&format!("**Paper:** {}\n\n", self.paper_expectation));
        if !self.commentary.is_empty() {
            out.push_str(&format!("**Measured:** {}\n\n", self.commentary));
        }
        if let Some(l) = &self.latency {
            out.push_str(&format!(
                "**Latency:** p50 {} / p95 {} / p99 {}\n\n",
                ms(l.p50_ms),
                ms(l.p95_ms),
                ms(l.p99_ms)
            ));
        }
        if let Some(pre) = &self.preformatted {
            out.push_str("```text\n");
            out.push_str(pre);
            if !pre.ends_with('\n') {
                out.push('\n');
            }
            out.push_str("```\n\n");
        }
        if !self.columns.is_empty() && !self.rows.is_empty() {
            out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
            out.push_str(&format!(
                "|{}\n",
                self.columns.iter().map(|_| "---|").collect::<String>()
            ));
            for r in &self.rows {
                out.push_str(&format!("| {} | {} |\n", r.label, r.cells.join(" | ")));
            }
            out.push('\n');
        }
        out
    }

    /// Render as a JSON object (hand-rolled: the workspace is built
    /// offline, so no serde). Shape:
    /// `{"id", "title", "paper", "measured", "columns": [...],
    ///   "rows": [{"label", "cells": [...]}, ...]}`.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        fn arr(items: impl Iterator<Item = String>) -> String {
            format!("[{}]", items.collect::<Vec<_>>().join(","))
        }
        let rows = arr(self.rows.iter().map(|r| {
            format!(
                "{{\"label\":\"{}\",\"cells\":{}}}",
                esc(&r.label),
                arr(r.cells.iter().map(|c| format!("\"{}\"", esc(c))))
            )
        }));
        let latency = match &self.latency {
            Some(l) => format!(
                ",\"latency\":{{\"p50_ms\":{:.3},\"p95_ms\":{:.3},\"p99_ms\":{:.3}}}",
                l.p50_ms, l.p95_ms, l.p99_ms
            ),
            None => String::new(),
        };
        format!(
            "{{\"id\":\"{}\",\"title\":\"{}\",\"paper\":\"{}\",\"measured\":\"{}\",\
             \"columns\":{},\"rows\":{}{}}}",
            esc(&self.id),
            esc(&self.title),
            esc(&self.paper_expectation),
            esc(&self.commentary),
            arr(self.columns.iter().map(|c| format!("\"{}\"", esc(c)))),
            rows,
            latency
        )
    }

    fn render_table(&self) -> String {
        // Column widths from headers and cells.
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for r in &self.rows {
            widths[0] = widths[0].max(r.label.len());
            for (i, c) in r.cells.iter().enumerate() {
                if i + 1 < widths.len() {
                    widths[i + 1] = widths[i + 1].max(c.len());
                }
            }
        }
        let mut out = String::new();
        for (i, h) in self.columns.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", h, w = widths[i]));
        }
        out.push('\n');
        for (i, _) in self.columns.iter().enumerate() {
            out.push_str(&format!("{:-<w$}  ", "", w = widths[i]));
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!("{:<w$}  ", r.label, w = widths[0]));
            for (i, c) in r.cells.iter().enumerate() {
                if i + 1 < widths.len() {
                    out.push_str(&format!("{:<w$}  ", c, w = widths[i + 1]));
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Format milliseconds with sensible precision.
pub fn ms(v: f64) -> String {
    if v >= 1000.0 {
        format!("{:.2} s", v / 1000.0)
    } else {
        format!("{v:.1} ms")
    }
}

/// Format bytes as KB/MB.
pub fn bytes(v: u64) -> String {
    if v >= 1 << 20 {
        format!("{:.2} MB", v as f64 / (1 << 20) as f64)
    } else if v >= 1 << 10 {
        format!("{:.1} KB", v as f64 / 1024.0)
    } else {
        format!("{v} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("figX", "demo", "expected shape", vec!["n", "a", "b"]);
        r.push("1", vec!["10.0".into(), "20.0".into()]);
        r.push("2", vec!["11.0".into(), "21.0".into()]);
        r.commentary = "measured shape".into();
        r
    }

    #[test]
    fn text_render_contains_everything() {
        let t = sample().to_text();
        assert!(t.contains("figX"));
        assert!(t.contains("expected shape"));
        assert!(t.contains("measured shape"));
        assert!(t.contains("21.0"));
    }

    #[test]
    fn markdown_render_is_a_table() {
        let md = sample().to_markdown();
        assert!(md.starts_with("## figX"));
        assert!(md.contains("| n | a | b |"));
        assert!(md.contains("| 2 | 11.0 | 21.0 |"));
    }

    #[test]
    fn preformatted_block_rendered_fenced() {
        let mut r = sample();
        r.preformatted = Some("###..##".into());
        let md = r.to_markdown();
        assert!(md.contains("```text\n###..##\n```"));
    }

    #[test]
    fn json_render_is_well_formed() {
        let mut r = sample();
        r.commentary = "has \"quotes\" and\nnewlines".into();
        let j = r.to_json();
        assert!(j.starts_with("{\"id\":\"figX\""));
        assert!(j.contains("\"columns\":[\"n\",\"a\",\"b\"]"));
        assert!(j.contains("{\"label\":\"2\",\"cells\":[\"11.0\",\"21.0\"]}"));
        assert!(j.contains("has \\\"quotes\\\" and\\nnewlines"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn latency_summary_rendered_everywhere() {
        let mut r = sample();
        r.latency = Some(LatencySummary {
            p50_ms: 12.5,
            p95_ms: 40.0,
            p99_ms: 55.25,
        });
        let t = r.to_text();
        assert!(
            t.contains("latency: p50 12.5 ms / p95 40.0 ms / p99 55.2 ms"),
            "{t}"
        );
        let md = r.to_markdown();
        assert!(md.contains("**Latency:**"), "{md}");
        let j = r.to_json();
        assert!(
            j.contains("\"latency\":{\"p50_ms\":12.500,\"p95_ms\":40.000,\"p99_ms\":55.250}"),
            "{j}"
        );
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        // Throughput-only reports stay latency-free.
        assert!(!sample().to_json().contains("latency"));
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(ms(12.34), "12.3 ms");
        assert_eq!(ms(2500.0), "2.50 s");
        assert_eq!(bytes(512), "512 B");
        assert_eq!(bytes(2048), "2.0 KB");
        assert_eq!(bytes(3 << 20), "3.00 MB");
    }
}
