//! Regenerates the paper artifact `fig9_mixed_workload` (see crate docs). Run with
//! `cargo run --release -p cm-bench --bin fig9_mixed_workload`.

use cm_bench::datasets::BenchScale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        BenchScale::Smoke
    } else {
        BenchScale::Full
    };
    let report = cm_bench::experiments::fig9_mixed_workload::run(scale);
    println!("{}", report.to_text());
}
