//! Regenerates the paper artifact `fig1_access_patterns` (see crate docs). Run with
//! `cargo run --release -p cm-bench --bin fig1_access_patterns`.

use cm_bench::datasets::BenchScale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        BenchScale::Smoke
    } else {
        BenchScale::Full
    };
    let report = cm_bench::experiments::fig1_access_patterns::run(scale);
    println!("{}", report.to_text());
}
