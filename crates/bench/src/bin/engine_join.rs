//! Regenerates the join benchmark (see
//! `cm_bench::experiments::engine_join`). Prints the table and emits
//! the result as JSON (machine-readable; `--json-out path` writes it to
//! a file). Run with `cargo run --release -p cm-bench --bin engine_join`.

use cm_bench::datasets::BenchScale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--smoke") {
        BenchScale::Smoke
    } else {
        BenchScale::Full
    };
    let report = cm_bench::experiments::engine_join::run(scale);
    eprintln!("{}", report.to_text());
    let json = report.to_json();
    match args
        .iter()
        .position(|a| a == "--json-out")
        .and_then(|i| args.get(i + 1))
    {
        Some(path) => {
            std::fs::write(path, &json).expect("write JSON report");
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
}
