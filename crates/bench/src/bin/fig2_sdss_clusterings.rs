//! Regenerates the paper artifact `fig2_sdss_clusterings` (see crate docs). Run with
//! `cargo run --release -p cm-bench --bin fig2_sdss_clusterings`.

use cm_bench::datasets::BenchScale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        BenchScale::Smoke
    } else {
        BenchScale::Full
    };
    let report = cm_bench::experiments::fig2_sdss_clusterings::run(scale);
    println!("{}", report.to_text());
}
