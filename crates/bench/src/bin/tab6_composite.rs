//! Regenerates the paper artifact `tab6_composite` (see crate docs). Run with
//! `cargo run --release -p cm-bench --bin tab6_composite`.

use cm_bench::datasets::BenchScale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        BenchScale::Smoke
    } else {
        BenchScale::Full
    };
    let report = cm_bench::experiments::tab6_composite::run(scale);
    println!("{}", report.to_text());
}
