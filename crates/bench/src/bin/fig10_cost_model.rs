//! Regenerates the paper artifact `fig10_cost_model` (see crate docs). Run with
//! `cargo run --release -p cm-bench --bin fig10_cost_model`.

use cm_bench::datasets::BenchScale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        BenchScale::Smoke
    } else {
        BenchScale::Full
    };
    let report = cm_bench::experiments::fig10_cost_model::run(scale);
    println!("{}", report.to_text());
}
