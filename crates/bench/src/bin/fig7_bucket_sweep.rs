//! Regenerates the paper artifact `fig7_bucket_sweep` (see crate docs). Run with
//! `cargo run --release -p cm-bench --bin fig7_bucket_sweep`.

use cm_bench::datasets::BenchScale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        BenchScale::Smoke
    } else {
        BenchScale::Full
    };
    let report = cm_bench::experiments::fig7_bucket_sweep::run(scale);
    println!("{}", report.to_text());
}
