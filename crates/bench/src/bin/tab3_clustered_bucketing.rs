//! Regenerates the paper artifact `tab3_clustered_bucketing` (see crate docs). Run with
//! `cargo run --release -p cm-bench --bin tab3_clustered_bucketing`.

use cm_bench::datasets::BenchScale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        BenchScale::Smoke
    } else {
        BenchScale::Full
    };
    let report = cm_bench::experiments::tab3_clustered_bucketing::run(scale);
    println!("{}", report.to_text());
}
