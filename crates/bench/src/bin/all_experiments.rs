//! Runs every reproduced table/figure and writes `EXPERIMENTS.md` at the
//! workspace root (paper-vs-measured record for each artifact).
//!
//! ```text
//! cargo run --release -p cm-bench --bin all_experiments           # full scale
//! cargo run --release -p cm-bench --bin all_experiments -- --smoke
//! cargo run --release -p cm-bench --bin all_experiments -- --out path.md
//! ```

use cm_bench::datasets::BenchScale;
use cm_bench::experiments;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--smoke") {
        BenchScale::Smoke
    } else {
        BenchScale::Full
    };
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "EXPERIMENTS.md".to_string());

    let mut md = String::from(
        "# EXPERIMENTS — paper vs. measured\n\n\
         Reproduction of every table and figure in the evaluation of *Correlation Maps: \
         A Compressed Access Method for Exploiting Soft Functional Dependencies* (Kimura \
         et al., VLDB 2009). \"Measured\" values are simulated-disk milliseconds using \
         the paper's own Table 1 cost constants (seek 5.5 ms, sequential page 0.078 ms); \
         data is generated at reduced scale with the paper's correlation structure \
         (see DESIGN.md §1), so *shapes and ratios* are the comparison target, not \
         absolute seconds.\n\n\
         Regenerate any section with `cargo run --release -p cm-bench --bin <id>_*`, or \
         everything with `--bin all_experiments`.\n\n",
    );

    let started = Instant::now();
    for report in experiments::run_all(scale) {
        println!("{}", report.to_text());
        md.push_str(&report.to_markdown());
    }
    md.push_str(&format!(
        "---\n\nGenerated in {:.1} s at scale `{scale:?}`.\n",
        started.elapsed().as_secs_f64()
    ));

    std::fs::write(&out_path, md).expect("write EXPERIMENTS.md");
    eprintln!(
        "wrote {out_path} in {:.1} s",
        started.elapsed().as_secs_f64()
    );
}
