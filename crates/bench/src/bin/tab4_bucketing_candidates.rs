//! Regenerates the paper artifact `tab4_bucketing_candidates` (see crate docs). Run with
//! `cargo run --release -p cm-bench --bin tab4_bucketing_candidates`.

use cm_bench::datasets::BenchScale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        BenchScale::Smoke
    } else {
        BenchScale::Full
    };
    let report = cm_bench::experiments::tab4_bucketing_candidates::run(scale);
    println!("{}", report.to_text());
}
