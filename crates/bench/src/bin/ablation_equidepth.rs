//! Regenerates the equi-depth bucketing ablation (the paper's §8 future
//! work). Run with `cargo run --release -p cm-bench --bin ablation_equidepth`.

use cm_bench::datasets::BenchScale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        BenchScale::Smoke
    } else {
        BenchScale::Full
    };
    let report = cm_bench::experiments::ablation_equidepth::run(scale);
    println!("{}", report.to_text());
}
