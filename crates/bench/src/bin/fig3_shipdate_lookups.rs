//! Regenerates the paper artifact `fig3_shipdate_lookups` (see crate docs). Run with
//! `cargo run --release -p cm-bench --bin fig3_shipdate_lookups`.

use cm_bench::datasets::BenchScale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        BenchScale::Smoke
    } else {
        BenchScale::Full
    };
    let report = cm_bench::experiments::fig3_shipdate_lookups::run(scale);
    println!("{}", report.to_text());
}
