//! Regenerates the paper artifact `fig6_cm_vs_btree` (see crate docs). Run with
//! `cargo run --release -p cm-bench --bin fig6_cm_vs_btree`.

use cm_bench::datasets::BenchScale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        BenchScale::Smoke
    } else {
        BenchScale::Full
    };
    let report = cm_bench::experiments::fig6_cm_vs_btree::run(scale);
    println!("{}", report.to_text());
}
