//! Regenerates the paper artifact `tab5_advisor_designs` (see crate docs). Run with
//! `cargo run --release -p cm-bench --bin tab5_advisor_designs`.

use cm_bench::datasets::BenchScale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        BenchScale::Smoke
    } else {
        BenchScale::Full
    };
    let report = cm_bench::experiments::tab5_advisor_designs::run(scale);
    println!("{}", report.to_text());
}
