//! Regenerates the paper artifact `fig8_maintenance` (see crate docs). Run with
//! `cargo run --release -p cm-bench --bin fig8_maintenance`.

use cm_bench::datasets::BenchScale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        BenchScale::Smoke
    } else {
        BenchScale::Full
    };
    let report = cm_bench::experiments::fig8_maintenance::run(scale);
    println!("{}", report.to_text());
}
