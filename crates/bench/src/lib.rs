//! # cm-bench
//!
//! Experiment harness reproducing **every table and figure** of the
//! paper's evaluation (§3.3–§3.4 and §7), on the simulated disk with the
//! paper's Table 1 cost constants. Each experiment is a library function
//! returning a [`Report`] (so integration tests can smoke-run it at tiny
//! scale) plus a thin binary (`cargo run --release -p cm-bench --bin
//! fig3_shipdate_lookups`). `--bin all_experiments` runs the suite and
//! writes `EXPERIMENTS.md` with paper-vs-measured commentary.
//!
//! Absolute times differ from the paper (their substrate is PostgreSQL on
//! a 2009 SATA disk; ours is a simulator at reduced data scale) — the
//! *shapes* are the reproduction target: who wins, by what factor, and
//! where the crossovers and knees fall.

pub mod datasets;
pub mod experiments;
pub mod report;

pub use report::{LatencySummary, Report, Row};
