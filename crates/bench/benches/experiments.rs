//! Criterion wrappers over the paper's access-path comparisons, so that
//! `cargo bench` exercises the full query paths end-to-end (simulated
//! I/O included). One benchmark per headline comparison:
//!
//! * Experiment 1 (Figure 6): CM vs. B+Tree vs. scan on an eBay price
//!   range.
//! * Figure 3: correlated vs. uncorrelated sorted index scan on TPC-H.
//! * Experiment 5 (Table 6): composite CM vs. composite B+Tree on SDSS.

use cm_bench::datasets::{
    ebay_data, ebay_table, sdss_data, sdss_table, tpch_data, tpch_table, BenchScale,
};
use cm_core::{BucketSpec, CmAttr, CmSpec};
use cm_datagen::{ebay::COL_PRICE, sdss, tpch};
use cm_query::{ExecContext, Pred, Query};
use cm_storage::DiskSim;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_experiment1_ebay(c: &mut Criterion) {
    let data = ebay_data(BenchScale::Smoke);
    let disk = DiskSim::with_defaults();
    let mut table = ebay_table(&disk, &data);
    let sec = table.add_secondary(&disk, "price", vec![COL_PRICE]);
    let cm = table.add_cm("price_cm", CmSpec::single_pow2(COL_PRICE, 12));
    let q = Query::single(Pred::between(COL_PRICE, 1000i64, 6000i64));

    let mut g = c.benchmark_group("exp1_ebay_price_range");
    g.bench_function("cm_scan", |b| {
        b.iter(|| {
            disk.reset();
            let ctx = ExecContext::cold(&disk);
            black_box(table.exec_cm_scan(&ctx, cm, &q))
        })
    });
    g.bench_function("btree_sorted_scan", |b| {
        b.iter(|| {
            disk.reset();
            let ctx = ExecContext::cold(&disk);
            black_box(table.exec_secondary_sorted(&ctx, sec, &q))
        })
    });
    g.bench_function("full_scan", |b| {
        b.iter(|| {
            disk.reset();
            let ctx = ExecContext::cold(&disk);
            black_box(table.exec_full_scan(&ctx, &q))
        })
    });
    g.finish();
}

fn bench_figure3_tpch(c: &mut Criterion) {
    let data = tpch_data(BenchScale::Smoke);
    let disk_a = DiskSim::with_defaults();
    let mut corr = tpch_table(&disk_a, &data, tpch::COL_RECEIPTDATE);
    let sec_a = corr.add_secondary(&disk_a, "ship", vec![tpch::COL_SHIPDATE]);
    let disk_b = DiskSim::with_defaults();
    let mut uncorr = tpch_table(&disk_b, &data, tpch::COL_ORDERKEY);
    let sec_b = uncorr.add_secondary(&disk_b, "ship", vec![tpch::COL_SHIPDATE]);
    let q = Query::single(Pred::is_in(
        tpch::COL_SHIPDATE,
        data.random_shipdates(10, 1),
    ));

    let mut g = c.benchmark_group("fig3_shipdate_in10");
    g.bench_function("correlated_clustering", |b| {
        b.iter(|| {
            disk_a.reset();
            let ctx = ExecContext::cold(&disk_a);
            black_box(corr.exec_secondary_sorted(&ctx, sec_a, &q))
        })
    });
    g.bench_function("uncorrelated_clustering", |b| {
        b.iter(|| {
            disk_b.reset();
            let ctx = ExecContext::cold(&disk_b);
            black_box(uncorr.exec_secondary_sorted(&ctx, sec_b, &q))
        })
    });
    g.finish();
}

fn bench_experiment5_sdss(c: &mut Criterion) {
    let data = sdss_data(BenchScale::Smoke);
    let disk = DiskSim::with_defaults();
    let mut table = sdss_table(&disk, &data, sdss::COL_OBJID);
    let cm_pair = table.add_cm(
        "ra_dec",
        CmSpec::new(vec![
            CmAttr {
                col: sdss::COL_RA,
                bucket: BucketSpec::covering(0.0, 360.0, 1 << 14),
            },
            CmAttr {
                col: sdss::COL_DEC,
                bucket: BucketSpec::covering(-10.0, 10.0, 1 << 16),
            },
        ]),
    );
    let bt = table.add_secondary(&disk, "ra_dec", vec![sdss::COL_RA, sdss::COL_DEC]);
    let q = Query::new(vec![
        Pred::between(sdss::COL_RA, 100.0, 110.0),
        Pred::between(sdss::COL_DEC, 1.0, 2.0),
    ]);

    let mut g = c.benchmark_group("exp5_sdss_two_ranges");
    g.bench_function("composite_cm", |b| {
        b.iter(|| {
            disk.reset();
            let ctx = ExecContext::cold(&disk);
            black_box(table.exec_cm_scan(&ctx, cm_pair, &q))
        })
    });
    g.bench_function("composite_btree", |b| {
        b.iter(|| {
            disk.reset();
            let ctx = ExecContext::cold(&disk);
            black_box(table.exec_secondary_sorted(&ctx, bt, &q))
        })
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_experiment1_ebay, bench_figure3_tpch, bench_experiment5_sdss
);
criterion_main!(benches);
