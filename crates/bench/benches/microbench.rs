//! Criterion microbenchmarks of the hot paths: CM build / lookup /
//! maintenance, B+Tree operations, bucketing, and the cardinality
//! estimators. These complement the experiment binaries (which reproduce
//! the paper's tables/figures on the simulated disk) by measuring real
//! CPU costs of the in-memory structures.

use cm_core::{AttrConstraint, BucketDirectory, BucketSpec, CmAttr, CmSpec, CorrelationMap};
use cm_index::BPlusTree;
use cm_stats::{estimate_distinct, DistinctSampler, EstimatorKind, FreqTable};
use cm_storage::{Column, DiskSim, HeapFile, Rid, Schema, Value, ValueType};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn price_heap(rows: usize) -> (Arc<DiskSim>, HeapFile) {
    let disk = DiskSim::with_defaults();
    let schema = Arc::new(Schema::new(vec![
        Column::new("catid", ValueType::Int),
        Column::new("price", ValueType::Int),
    ]));
    let data: Vec<Vec<Value>> = (0..rows as i64)
        .map(|i| {
            let cat = i % 1000;
            vec![Value::Int(cat), Value::Int(cat * 1000 + (i * 37) % 1000)]
        })
        .collect();
    let heap = HeapFile::bulk_load_clustered(&disk, schema, data, 90, 0).unwrap();
    (disk, heap)
}

fn bench_cm(c: &mut Criterion) {
    let (_disk, heap) = price_heap(100_000);
    let dir = BucketDirectory::build(&heap, 0, 900);
    let spec = CmSpec::single_pow2(1, 12);

    c.bench_function("cm_build_100k", |b| {
        b.iter(|| CorrelationMap::build("bench", spec.clone(), &heap, &dir))
    });

    let cm = CorrelationMap::build("bench", spec.clone(), &heap, &dir);
    c.bench_function("cm_lookup_eq", |b| {
        b.iter(|| black_box(cm.lookup(&[AttrConstraint::Eq(Value::Int(500_500))])))
    });
    c.bench_function("cm_lookup_range", |b| {
        b.iter(|| {
            black_box(cm.lookup(&[AttrConstraint::Range(
                Value::Int(100_000),
                Value::Int(150_000),
            )]))
        })
    });

    c.bench_function("cm_insert_delete", |b| {
        let row = vec![Value::Int(500), Value::Int(500_123)];
        let mut cm = CorrelationMap::build("bench", spec.clone(), &heap, &dir);
        b.iter(|| {
            cm.insert(&row, Rid(42 * 900), &dir);
            cm.delete(&row, Rid(42 * 900), &dir);
        })
    });

    let composite = CmSpec::new(vec![CmAttr::pow2(1, 10), CmAttr::raw(0)]);
    c.bench_function("cm_build_composite_100k", |b| {
        b.iter(|| CorrelationMap::build("bench", composite.clone(), &heap, &dir))
    });
}

fn bench_btree(c: &mut Criterion) {
    c.bench_function("btree_insert_100k_seq", |b| {
        b.iter_batched(
            || BPlusTree::<i64, u64>::new(64),
            |mut t| {
                for i in 0..100_000i64 {
                    t.insert(i, i as u64);
                }
                t
            },
            BatchSize::LargeInput,
        )
    });

    let mut tree: BPlusTree<i64, u64> = BPlusTree::new(64);
    for i in 0..100_000i64 {
        tree.insert((i * 2_654_435_761) % 1_000_003, i as u64);
    }
    c.bench_function("btree_get", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 99_991) % 1_000_003;
            black_box(tree.get(&k))
        })
    });
    c.bench_function("btree_range_100", |b| {
        b.iter(|| {
            black_box(
                tree.range(
                    std::ops::Bound::Included(&500_000),
                    std::ops::Bound::Unbounded,
                )
                .take(100)
                .count(),
            )
        })
    });
}

fn bench_bucketing(c: &mut Criterion) {
    let (_disk, heap) = price_heap(100_000);
    c.bench_function("bucket_directory_build_100k", |b| {
        b.iter(|| BucketDirectory::build(&heap, 0, 900))
    });
    let dir = BucketDirectory::build(&heap, 0, 900);
    c.bench_function("bucket_of_rid", |b| {
        let mut r = 0u64;
        b.iter(|| {
            r = (r + 7919) % 100_000;
            black_box(dir.bucket_of(Rid(r)))
        })
    });
    let spec = BucketSpec::pow2(12);
    c.bench_function("bucket_key_part", |b| {
        b.iter(|| black_box(spec.key_part(&Value::Int(123_456))))
    });
}

fn bench_estimators(c: &mut Criterion) {
    c.bench_function("distinct_sampler_100k", |b| {
        b.iter(|| {
            let mut ds = DistinctSampler::new(1024);
            for i in 0..100_000u64 {
                ds.observe_hash(i.wrapping_mul(0x9E3779B97F4A7C15));
            }
            black_box(ds.estimate())
        })
    });

    let mut freq = FreqTable::new();
    for i in 0..30_000u64 {
        freq.observe(i % 7_000);
    }
    let profile = freq.freq_of_freq();
    c.bench_function("adaptive_estimator", |b| {
        b.iter(|| {
            black_box(estimate_distinct(
                EstimatorKind::Adaptive,
                1_000_000,
                30_000,
                &profile,
            ))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_cm, bench_btree, bench_bucketing, bench_estimators
);
criterion_main!(benches);
