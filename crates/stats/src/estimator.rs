//! Sample-based distinct-value estimation.
//!
//! The CM Advisor cannot afford a Distinct Sampling scan for every one of
//! the hundreds of candidate composite designs (§6.1.3 counts 767 designs
//! for four attributes), so the paper estimates composite `c_per_u` with
//! the **Adaptive Estimator** (AE) of Charikar et al. over a ~30,000-row
//! random sample.
//!
//! **Substitution note (documented in DESIGN.md):** AE's published
//! derivation fits a two-parameter frequency model; here we implement the
//! two classical estimators it is built from and blend them by measured
//! sample skew: **GEE** (`sqrt(n/r)·f1 + Σ_{j≥2} f_j`, the
//! error-guaranteed baseline from the same paper) and **Shlosser**'s
//! skew-adaptive estimator. [`estimate_distinct`] with
//! [`EstimatorKind::Adaptive`] takes the conservative minimum of the two
//! (each overestimates in the regime where the other is reliable). The
//! advisor only needs composite cardinalities accurate to within tens of
//! percent to rank bucketings; the blend comfortably achieves that (see
//! tests).

/// Which estimator to apply to a sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatorKind {
    /// Guaranteed-Error Estimator: `sqrt(n/r) * f1 + sum_{j>=2} f_j`.
    Gee,
    /// Shlosser's estimator (skew-adaptive).
    Shlosser,
    /// Blend: Shlosser under skew, GEE otherwise — stands in for the
    /// paper's AE.
    Adaptive,
}

/// GEE estimator of the number of distinct values in a population of `n`
/// rows, from a uniform random sample of `r` rows whose frequency-of-
/// frequency profile is `f` (`f[j]` = keys seen exactly `j + 1` times).
pub fn gee(n: u64, r: u64, f: &[u64]) -> f64 {
    if r == 0 || f.is_empty() {
        return 0.0;
    }
    let f1 = f[0] as f64;
    let rest: u64 = f.iter().skip(1).sum();
    let scale = ((n as f64) / (r as f64)).sqrt().max(1.0);
    scale * f1 + rest as f64
}

/// Shlosser's estimator: `d + f1 * A / B` where
/// `A = Σ_i (1-q)^i f_i`, `B = Σ_i i q (1-q)^(i-1) f_i`, `q = r / n`.
///
/// Accurate when high-frequency values are likely to appear in the sample
/// (skewed data), which is exactly the regime correlated attributes
/// produce.
pub fn shlosser(n: u64, r: u64, f: &[u64]) -> f64 {
    if r == 0 || f.is_empty() {
        return 0.0;
    }
    let d: u64 = f.iter().sum();
    if n <= r {
        return d as f64;
    }
    let q = r as f64 / n as f64;
    let f1 = f[0] as f64;
    let mut num = 0.0;
    let mut den = 0.0;
    let mut pow = 1.0 - q; // (1-q)^i starting at i = 1
    for (idx, &fi) in f.iter().enumerate() {
        let i = (idx + 1) as f64;
        num += pow * fi as f64;
        den += i * q * (pow / (1.0 - q)) * fi as f64; // i·q·(1-q)^(i-1)
        pow *= 1.0 - q;
    }
    if den <= 0.0 {
        return d as f64;
    }
    d as f64 + f1 * num / den
}

/// Estimate the population distinct count from a sample profile, clamped
/// to the feasible interval `[d, n]`.
pub fn estimate_distinct(kind: EstimatorKind, n: u64, r: u64, f: &[u64]) -> f64 {
    let d: u64 = f.iter().sum();
    let raw = match kind {
        EstimatorKind::Gee => gee(n, r, f),
        EstimatorKind::Shlosser => shlosser(n, r, f),
        EstimatorKind::Adaptive => {
            // GEE overestimates under high skew with many rare values;
            // Shlosser overestimates under low skew. Each is reliable in
            // the other's weak regime, so the conservative combination
            // takes the smaller of the two (both are clamped below by the
            // observed sample distinct count, so "smaller" cannot
            // collapse to nonsense).
            gee(n, r, f).min(shlosser(n, r, f))
        }
    };
    raw.clamp(d as f64, n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::FreqTable;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Draw a uniform sample of `r` rows from `pop` and return the
    /// frequency profile.
    fn sample_profile(pop: &[u64], r: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = FreqTable::new();
        for _ in 0..r {
            t.observe(pop[rng.gen_range(0..pop.len())]);
        }
        t.freq_of_freq()
    }

    fn rel_err(est: f64, truth: f64) -> f64 {
        (est - truth).abs() / truth
    }

    #[test]
    fn exhaustive_sample_is_exact() {
        // Sample = population: every estimator must return d.
        let f = vec![0, 0, 100]; // 100 keys seen 3 times, r = 300, n = 300
        for kind in [EstimatorKind::Gee, EstimatorKind::Shlosser, EstimatorKind::Adaptive] {
            assert_eq!(estimate_distinct(kind, 300, 300, &f), 100.0);
        }
    }

    #[test]
    fn empty_sample_returns_zero() {
        for kind in [EstimatorKind::Gee, EstimatorKind::Shlosser, EstimatorKind::Adaptive] {
            assert_eq!(estimate_distinct(kind, 1000, 0, &[]), 0.0);
        }
    }

    #[test]
    fn uniform_low_cardinality_population() {
        // 1M rows over 1000 distinct values, uniform.
        let n = 1_000_000u64;
        let pop: Vec<u64> = (0..n).map(|i| i % 1000).collect();
        let f = sample_profile(&pop, 30_000, 42);
        let est = estimate_distinct(EstimatorKind::Adaptive, n, 30_000, &f);
        assert!(rel_err(est, 1000.0) < 0.05, "est {est}");
    }

    #[test]
    fn skewed_population() {
        // Zipf-ish: 100 hot keys cover 90% of rows, 10_000 rare the rest.
        let mut pop = Vec::new();
        for i in 0..900_000u64 {
            pop.push(i % 100);
        }
        for i in 0..100_000u64 {
            pop.push(1000 + i % 10_000);
        }
        let truth = 10_100.0;
        let f = sample_profile(&pop, 30_000, 7);
        let est = estimate_distinct(EstimatorKind::Adaptive, pop.len() as u64, 30_000, &f);
        assert!(rel_err(est, truth) < 0.6, "est {est} vs {truth}");
        // The adaptive estimate must beat raw sample distinct count.
        let d: u64 = f.iter().sum();
        assert!((est - truth).abs() < (d as f64 - truth).abs());
    }

    #[test]
    fn high_cardinality_population() {
        // Nearly unique column: 200k rows, 100k distinct.
        let pop: Vec<u64> = (0..200_000u64).map(|i| i / 2).collect();
        let f = sample_profile(&pop, 30_000, 11);
        let est = estimate_distinct(EstimatorKind::Adaptive, 200_000, 30_000, &f);
        assert!(rel_err(est, 100_000.0) < 0.5, "est {est}");
    }

    #[test]
    fn estimates_are_clamped_to_feasible_interval() {
        // Pathological profile: force GEE above n.
        let f = vec![100]; // all singletons
        let est = estimate_distinct(EstimatorKind::Gee, 120, 1, &f);
        assert!(est <= 120.0);
        assert!(est >= 100.0);
    }

    #[test]
    fn ranking_property_for_bucketings() {
        // What the advisor actually needs: coarser bucketings (fewer
        // distinct composites) must estimate below finer ones.
        let n = 500_000u64;
        let fine: Vec<u64> = (0..n).map(|i| i % 50_000).collect();
        let coarse: Vec<u64> = (0..n).map(|i| (i % 50_000) / 64).collect();
        let ef = estimate_distinct(
            EstimatorKind::Adaptive,
            n,
            30_000,
            &sample_profile(&fine, 30_000, 3),
        );
        let ec = estimate_distinct(
            EstimatorKind::Adaptive,
            n,
            30_000,
            &sample_profile(&coarse, 30_000, 3),
        );
        assert!(ec < ef, "coarse {ec} must rank below fine {ef}");
    }

    #[test]
    fn gee_formula_spot_check() {
        // n=10000, r=100, f1=50, f2=25: sqrt(100)*50 + 25 = 525.
        assert!((gee(10_000, 100, &[50, 25]) - 525.0).abs() < 1e-9);
    }
}
