//! Distinct Sampling (Gibbons, VLDB 2001).
//!
//! The paper uses Distinct Sampling for single-attribute cardinalities
//! because "an error in cardinality estimation for single attributes may
//! cause substantial errors in later database design phases" (§4.2). The
//! algorithm keeps a bounded sample of *distinct values*: a value enters
//! the sample when its hash has at least `level` trailing zero bits; when
//! the sample overflows, the level increases and surviving entries are
//! re-filtered. The estimate is `|sample| * 2^level` and is far more
//! accurate than row-level sampling for skewed data, at the cost of one
//! full scan.

use std::collections::HashSet;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Bounded-space distinct-count sketch.
#[derive(Debug, Clone)]
pub struct DistinctSampler {
    /// Current sampling level: only hashes with `>= level` trailing zeros
    /// stay in the sample.
    level: u32,
    /// Hashes currently sampled.
    sample: HashSet<u64>,
    /// Maximum sample size before the level increases.
    cap: usize,
}

impl DistinctSampler {
    /// A sketch holding at most `cap` distinct hashes (must be ≥ 2; a few
    /// thousand gives low single-digit percent error on the dataset sizes
    /// used in the experiments).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 2, "cap must be at least 2");
        DistinctSampler { level: 0, sample: HashSet::with_capacity(cap + 1), cap }
    }

    /// Feed one value from the stream.
    pub fn observe<T: Hash + ?Sized>(&mut self, value: &T) {
        let mut h = DefaultHasher::new();
        value.hash(&mut h);
        self.observe_hash(h.finish());
    }

    /// Feed a pre-hashed value.
    pub fn observe_hash(&mut self, hash: u64) {
        if hash.trailing_zeros() < self.level {
            return;
        }
        self.sample.insert(hash);
        while self.sample.len() > self.cap {
            self.level += 1;
            let level = self.level;
            self.sample.retain(|h| h.trailing_zeros() >= level);
        }
    }

    /// Estimated number of distinct values observed.
    pub fn estimate(&self) -> f64 {
        self.sample.len() as f64 * (1u64 << self.level) as f64
    }

    /// Current sampling level (diagnostics).
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Current sample size (diagnostics).
    pub fn sample_len(&self) -> usize {
        self.sample.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_capacity() {
        let mut ds = DistinctSampler::new(1024);
        for i in 0..500u64 {
            ds.observe(&i);
        }
        assert_eq!(ds.level(), 0);
        assert_eq!(ds.estimate(), 500.0);
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut ds = DistinctSampler::new(1024);
        for _ in 0..100 {
            for i in 0..50u64 {
                ds.observe(&i);
            }
        }
        assert_eq!(ds.estimate(), 50.0);
    }

    #[test]
    fn estimate_within_tolerance_above_capacity() {
        let mut ds = DistinctSampler::new(1024);
        let true_d = 200_000u64;
        for i in 0..true_d {
            ds.observe(&i);
        }
        let est = ds.estimate();
        let err = (est - true_d as f64).abs() / true_d as f64;
        assert!(err < 0.15, "estimate {est} vs {true_d} (err {err:.3})");
        assert!(ds.sample_len() <= 1024);
    }

    #[test]
    fn skewed_stream_is_handled() {
        // 10 hot values with many repeats each + 10k rare singletons.
        let mut ds = DistinctSampler::new(512);
        for _rep in 0..10_000u64 {
            for hot in 0..10u64 {
                ds.observe(&(hot, 0u64, 0u64));
            }
        }
        for rare in 0..10_000u64 {
            ds.observe(&(rare, 1u64, 0u64));
        }
        let est = ds.estimate();
        let truth = 10_010.0;
        let err = (est - truth).abs() / truth;
        assert!(err < 0.2, "estimate {est} vs {truth}");
    }

    #[test]
    fn level_rises_monotonically() {
        let mut ds = DistinctSampler::new(16);
        let mut last = 0;
        for i in 0..10_000u64 {
            ds.observe(&i);
            assert!(ds.level() >= last);
            last = ds.level();
        }
        assert!(ds.level() > 0);
    }

    #[test]
    #[should_panic(expected = "cap must be at least 2")]
    fn tiny_cap_rejected() {
        DistinctSampler::new(1);
    }
}
