//! Reservoir sampling.
//!
//! The paper collects its advisor sample "randomly during the DS table
//! scan, yielding an optimum random sample" (§4.2, citing Olken & Rotem).
//! [`ReservoirSampler`] is the classical Algorithm R: a single pass keeps
//! a uniform sample of fixed size with O(1) work per row.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform fixed-size sample over a stream.
#[derive(Debug, Clone)]
pub struct ReservoirSampler<T> {
    sample: Vec<T>,
    seen: u64,
    capacity: usize,
    rng: StdRng,
}

impl<T> ReservoirSampler<T> {
    /// A reservoir of `capacity` items with a deterministic seed (all
    /// experiments are reproducible end-to-end).
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        ReservoirSampler {
            sample: Vec::with_capacity(capacity),
            seen: 0,
            capacity,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Offer one stream element.
    pub fn observe(&mut self, item: T) {
        self.seen += 1;
        if self.sample.len() < self.capacity {
            self.sample.push(item);
        } else {
            let j = self.rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.sample[j as usize] = item;
            }
        }
    }

    /// The current sample.
    pub fn sample(&self) -> &[T] {
        &self.sample
    }

    /// Consume the sampler, returning the sample.
    pub fn into_sample(self) -> Vec<T> {
        self.sample
    }

    /// Number of stream elements offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_stream_is_kept_entirely() {
        let mut r = ReservoirSampler::new(100, 1);
        for i in 0..50u32 {
            r.observe(i);
        }
        assert_eq!(r.sample().len(), 50);
        assert_eq!(r.seen(), 50);
    }

    #[test]
    fn capacity_is_respected() {
        let mut r = ReservoirSampler::new(64, 1);
        for i in 0..10_000u32 {
            r.observe(i);
        }
        assert_eq!(r.sample().len(), 64);
        assert_eq!(r.seen(), 10_000);
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        // Run many reservoirs; each element of 0..100 should appear with
        // probability ~k/n = 10/100.
        let mut hits = vec![0u32; 100];
        for seed in 0..2000u64 {
            let mut r = ReservoirSampler::new(10, seed);
            for i in 0..100u32 {
                r.observe(i);
            }
            for &x in r.sample() {
                hits[x as usize] += 1;
            }
        }
        // Expected 200 hits each; allow generous tolerance.
        for (i, &h) in hits.iter().enumerate() {
            assert!((120..=280).contains(&h), "element {i} sampled {h} times");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = ReservoirSampler::new(8, 99);
        let mut b = ReservoirSampler::new(8, 99);
        for i in 0..1000u32 {
            a.observe(i);
            b.observe(i);
        }
        assert_eq!(a.sample(), b.sample());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _: ReservoirSampler<u8> = ReservoirSampler::new(0, 0);
    }
}
