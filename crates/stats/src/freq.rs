//! Frequency tables over samples.

use std::collections::HashMap;
use std::hash::Hash;

/// Counts occurrences of sampled keys and derives the frequency-of-
/// frequency profile (`f_j` = number of keys seen exactly `j` times) that
/// the sample-based distinct-value estimators consume.
#[derive(Debug, Clone)]
pub struct FreqTable<K: Eq + Hash> {
    counts: HashMap<K, u64>,
    total: u64,
}

impl<K: Eq + Hash> Default for FreqTable<K> {
    fn default() -> Self {
        FreqTable { counts: HashMap::new(), total: 0 }
    }
}

impl<K: Eq + Hash> FreqTable<K> {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one observation.
    pub fn observe(&mut self, key: K) {
        *self.counts.entry(key).or_insert(0) += 1;
        self.total += 1;
    }

    /// Number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct keys in the sample (`d`).
    pub fn distinct(&self) -> u64 {
        self.counts.len() as u64
    }

    /// Number of keys observed exactly once (`f_1`).
    pub fn f1(&self) -> u64 {
        self.counts.values().filter(|&&c| c == 1).count() as u64
    }

    /// Frequency-of-frequency profile: `result[j]` = number of keys seen
    /// exactly `j + 1` times.
    pub fn freq_of_freq(&self) -> Vec<u64> {
        let max = self.counts.values().copied().max().unwrap_or(0) as usize;
        let mut f = vec![0u64; max];
        for &c in self.counts.values() {
            f[c as usize - 1] += 1;
        }
        f
    }

    /// Raw per-key counts (read-only).
    pub fn counts(&self) -> &HashMap<K, u64> {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_profile() {
        let mut t = FreqTable::new();
        for k in ["a", "b", "a", "c", "a", "b"] {
            t.observe(k);
        }
        assert_eq!(t.total(), 6);
        assert_eq!(t.distinct(), 3);
        assert_eq!(t.f1(), 1); // only "c"
        // f_1 = 1 ("c"), f_2 = 1 ("b"), f_3 = 1 ("a")
        assert_eq!(t.freq_of_freq(), vec![1, 1, 1]);
    }

    #[test]
    fn empty_table() {
        let t: FreqTable<u32> = FreqTable::new();
        assert_eq!(t.total(), 0);
        assert_eq!(t.distinct(), 0);
        assert_eq!(t.f1(), 0);
        assert!(t.freq_of_freq().is_empty());
    }

    #[test]
    fn all_unique() {
        let mut t = FreqTable::new();
        for i in 0..10u32 {
            t.observe(i);
        }
        assert_eq!(t.f1(), 10);
        assert_eq!(t.freq_of_freq(), vec![10]);
    }
}
