//! Exact correlation statistics over full tables.
//!
//! Tables 1–2 of the paper define the statistics its cost model consumes:
//! `u_tups` (tuples per unclustered value), `c_tups` (tuples per clustered
//! value), and the correlation strength `c_per_u` — the average number of
//! distinct clustered values co-occurring with each unclustered value,
//! computable as `D(Au, Ac) / D(Au)`. These exact versions are used to
//! validate the sample-based estimators and to drive experiments where the
//! paper also computed them exactly.

use cm_storage::Value;
use std::collections::HashSet;

/// Correlation statistics between an unclustered attribute `Au` and a
/// clustered attribute `Ac` (paper, Tables 1–2).
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelationStats {
    /// Total tuples examined.
    pub total_tups: u64,
    /// `D(Au)` — distinct unclustered values.
    pub distinct_u: u64,
    /// `D(Ac)` — distinct clustered values.
    pub distinct_c: u64,
    /// `D(Au, Ac)` — distinct co-occurring pairs.
    pub distinct_uc: u64,
    /// Average distinct `Ac` values per `Au` value: `D(Au,Ac) / D(Au)`.
    pub c_per_u: f64,
    /// Average tuples per `Au` value: `total / D(Au)`.
    pub u_tups: f64,
    /// Average tuples per `Ac` value: `total / D(Ac)`.
    pub c_tups: f64,
}

/// Compute exact correlation statistics from `(Au, Ac)` value pairs.
pub fn correlation_stats<'a>(
    pairs: impl Iterator<Item = (&'a Value, &'a Value)>,
) -> CorrelationStats {
    let mut us: HashSet<&Value> = HashSet::new();
    let mut cs: HashSet<&Value> = HashSet::new();
    let mut ucs: HashSet<(&Value, &Value)> = HashSet::new();
    let mut total = 0u64;
    for (u, c) in pairs {
        total += 1;
        us.insert(u);
        cs.insert(c);
        ucs.insert((u, c));
    }
    finish(total, us.len() as u64, cs.len() as u64, ucs.len() as u64)
}

/// Compute exact correlation statistics where the "unclustered key" is a
/// derived composite (e.g. a bucketed multi-attribute CM key). The caller
/// supplies pre-projected `(key, Ac)` pairs with any hashable key type.
pub fn composite_correlation_stats<K: std::hash::Hash + Eq>(
    pairs: impl Iterator<Item = (K, Value)>,
) -> CorrelationStats {
    let mut us: HashSet<u64> = HashSet::new();
    let mut cs: HashSet<Value> = HashSet::new();
    let mut ucs: HashSet<(u64, Value)> = HashSet::new();
    let mut total = 0u64;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::Hasher;
    for (k, c) in pairs {
        total += 1;
        let mut h = DefaultHasher::new();
        k.hash(&mut h);
        let kh = h.finish();
        us.insert(kh);
        ucs.insert((kh, c.clone()));
        cs.insert(c);
    }
    finish(total, us.len() as u64, cs.len() as u64, ucs.len() as u64)
}

fn finish(total: u64, du: u64, dc: u64, duc: u64) -> CorrelationStats {
    CorrelationStats {
        total_tups: total,
        distinct_u: du,
        distinct_c: dc,
        distinct_uc: duc,
        c_per_u: if du == 0 { 0.0 } else { duc as f64 / du as f64 },
        u_tups: if du == 0 { 0.0 } else { total as f64 / du as f64 },
        c_tups: if dc == 0 { 0.0 } else { total as f64 / dc as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(data: &[(&'static str, &'static str)]) -> Vec<(Value, Value)> {
        data.iter().map(|(u, c)| (Value::str(*u), Value::str(*c))).collect()
    }

    #[test]
    fn perfect_functional_dependency_has_c_per_u_one() {
        // city -> state is exact here.
        let data = pairs(&[
            ("boston", "MA"),
            ("boston", "MA"),
            ("cambridge", "MA"),
            ("toledo", "OH"),
            ("toledo", "OH"),
        ]);
        let s = correlation_stats(data.iter().map(|(u, c)| (u, c)));
        assert_eq!(s.total_tups, 5);
        assert_eq!(s.distinct_u, 3);
        assert_eq!(s.distinct_uc, 3);
        assert!((s.c_per_u - 1.0).abs() < 1e-12);
    }

    #[test]
    fn soft_fd_from_the_paper() {
        // Boston appears in MA and NH: c_per_u > 1.
        let data = pairs(&[
            ("boston", "MA"),
            ("boston", "NH"),
            ("springfield", "MA"),
            ("springfield", "OH"),
            ("toledo", "OH"),
        ]);
        let s = correlation_stats(data.iter().map(|(u, c)| (u, c)));
        assert_eq!(s.distinct_u, 3);
        assert_eq!(s.distinct_uc, 5);
        assert!((s.c_per_u - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_attributes_have_high_c_per_u() {
        // Every u co-occurs with every c.
        let mut data = Vec::new();
        for u in 0..10i64 {
            for c in 0..20i64 {
                data.push((Value::Int(u), Value::Int(c)));
            }
        }
        let s = correlation_stats(data.iter().map(|(u, c)| (u, c)));
        assert!((s.c_per_u - 20.0).abs() < 1e-12);
        assert!((s.u_tups - 20.0).abs() < 1e-12);
        assert!((s.c_tups - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        let s = correlation_stats(std::iter::empty());
        assert_eq!(s.total_tups, 0);
        assert_eq!(s.c_per_u, 0.0);
    }

    #[test]
    fn composite_keys_tighten_correlation() {
        // (lon, lat) -> zip is exact; lon alone is not (the paper's §6
        // motivating example).
        let rows: Vec<((i64, i64), Value)> = vec![
            ((1, 1), Value::Int(11)),
            ((1, 2), Value::Int(12)),
            ((2, 1), Value::Int(21)),
            ((2, 2), Value::Int(22)),
            ((1, 1), Value::Int(11)),
        ];
        let comp = composite_correlation_stats(rows.iter().map(|(k, c)| (*k, c.clone())));
        assert!((comp.c_per_u - 1.0).abs() < 1e-12);

        let lon_only =
            composite_correlation_stats(rows.iter().map(|((lon, _), c)| (*lon, c.clone())));
        assert!(lon_only.c_per_u > 1.5, "lon alone is a weaker determinant");
    }
}
