//! # cm-stats
//!
//! Statistics substrate for the Correlation Maps (VLDB 2009) reproduction.
//!
//! The paper's cost model and CM Advisor rest on cardinality statistics
//! (§4.2):
//!
//! * **Distinct Sampling** (Gibbons, VLDB'01) for accurate single-attribute
//!   cardinalities at the cost of one table scan — [`DistinctSampler`].
//! * The **Adaptive Estimator** (Charikar et al., PODS'00) for composite
//!   cardinalities from an in-memory random sample, fast enough to score
//!   hundreds of candidate CM designs — [`estimate_distinct`], which
//!   follows the GEE / Shlosser family (see module docs for the exact
//!   formula and the substitution note).
//! * **Reservoir sampling** collected during the Distinct Sampling scan
//!   (Olken-style) — [`ReservoirSampler`].
//! * Exact correlation statistics over full tables — [`CorrelationStats`],
//!   providing `c_per_u = D(Au, Ac) / D(Au)`, `u_tups`, and `c_tups` from
//!   Tables 1–2 of the paper.

pub mod distinct;
pub mod estimator;
pub mod freq;
pub mod reservoir;
pub mod tablestats;

pub use distinct::DistinctSampler;
pub use estimator::{estimate_distinct, gee, shlosser, EstimatorKind};
pub use freq::FreqTable;
pub use reservoir::ReservoirSampler;
pub use tablestats::{composite_correlation_stats, correlation_stats, CorrelationStats};
