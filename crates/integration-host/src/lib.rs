//! Host crate for the cross-crate integration tests living in `/tests`
//! at the workspace root (declared via `[[test]]` path entries).
