//! # cm-cost
//!
//! The paper's correlation-aware analytic cost model (§3–§4) — "the first
//! \[model\] to describe actual query execution using statistics that are
//! practical to calculate on large data sets".
//!
//! All formulas are implemented exactly as printed:
//!
//! * `cost_scan = seq_page_cost · p`, with `p = total_tups / tups_per_page`
//! * `cost_uncorrelated = n_lookups · u_tups · seek_cost · btree_height`
//!   (pipelined secondary index scan, §3.1)
//! * `c_pages = c_tups / tups_per_page`;
//!   `cost_sorted = min(n_lookups · c_per_u · (seek_cost · btree_height +
//!   seq_page_cost · c_pages), cost_scan)` (sorted index scan with
//!   correlations, §4.1)
//! * a CM variant that swaps the secondary tree descent for a clustered
//!   index descent and adds the bucketing false-positive factor (§5–§6).
//!
//! The model is deliberately the *shared* currency of the system: the CM
//! Advisor ranks candidate designs with it, the query planner picks access
//! paths with it, and the experiment harness plots it next to measured
//! (simulated-disk) runtimes to reproduce the paper's model-vs-measured
//! figures (Figures 3, 7, 10).

use cm_stats::CorrelationStats;
use cm_storage::DiskConfig;

/// Statistics and hardware parameters feeding the model (paper, Table 1).
#[derive(Debug, Clone, Copy)]
pub struct CostParams {
    /// Time to seek to a random page and read it (ms).
    pub seek_ms: f64,
    /// Time to read one page sequentially (ms).
    pub seq_page_ms: f64,
    /// Tuples per heap page.
    pub tups_per_page: f64,
    /// Total tuples in the table.
    pub total_tups: f64,
    /// Root-to-leaf height of the (secondary or clustered) B+Tree probed.
    pub btree_height: f64,
}

impl CostParams {
    /// Build from a disk configuration plus table shape.
    pub fn new(
        disk: &DiskConfig,
        tups_per_page: usize,
        total_tups: u64,
        btree_height: usize,
    ) -> Self {
        CostParams {
            seek_ms: disk.seek_ms,
            seq_page_ms: disk.seq_page_ms,
            tups_per_page: tups_per_page as f64,
            total_tups: total_tups as f64,
            btree_height: btree_height as f64,
        }
    }

    /// Number of heap pages `p`.
    pub fn pages(&self) -> f64 {
        (self.total_tups / self.tups_per_page).ceil()
    }

    /// Full sequential scan: `seq_page_cost · p` (§3).
    ///
    /// The paper notes real scans run ~10% above this due to external
    /// factors; the simulated disk has no such factors, so the model is
    /// tight here.
    pub fn cost_scan(&self) -> f64 {
        self.seq_page_ms * self.pages()
    }

    /// Pipelined (unsorted) secondary index scan (§3.1):
    /// `n_lookups · u_tups · seek_cost · btree_height`.
    ///
    /// Every matching tuple triggers an uncoordinated probe, hence the
    /// multiplicative seek term that makes this path viable only for very
    /// selective lookups.
    pub fn cost_pipelined(&self, n_lookups: f64, u_tups: f64) -> f64 {
        n_lookups * u_tups * self.seek_ms * self.btree_height
    }

    /// `c_pages = c_tups / tups_per_page`: pages scanned per clustered
    /// value reached (§4.1).
    pub fn c_pages(&self, c_tups: f64) -> f64 {
        (c_tups / self.tups_per_page).max(1.0)
    }

    /// Sorted (bitmap-style) secondary index scan with correlations
    /// (§4.1):
    ///
    /// ```text
    /// cost_sorted = min( n_lookups · c_per_u ·
    ///                      [ seek·height + seq·c_pages ],
    ///                    cost_scan )
    /// ```
    ///
    /// `c_per_u` is the correlation strength: with a strong soft FD it is
    /// small and each lookup touches few clustered runs; without
    /// correlation it approaches `D(Ac)` and the bound degrades to a scan.
    pub fn cost_sorted(&self, n_lookups: f64, c_per_u: f64, c_tups: f64) -> f64 {
        let per_value =
            self.seek_ms * self.btree_height + self.seq_page_ms * self.c_pages(c_tups);
        (n_lookups * c_per_u * per_value).min(self.cost_scan())
    }

    /// Convenience: sorted-scan cost from measured correlation statistics.
    pub fn cost_sorted_from_stats(&self, n_lookups: f64, stats: &CorrelationStats) -> f64 {
        self.cost_sorted(n_lookups, stats.c_per_u, stats.c_tups)
    }

    /// CM-guided scan (§5–§6). Identical in shape to
    /// [`CostParams::cost_sorted`], but:
    ///
    /// * the descent happens in the **clustered** index
    ///   (`clustered_height`), not a secondary tree — the CM itself is
    ///   memory-resident and charged zero I/O, exactly as in the paper's
    ///   prototype;
    /// * `c_per_u` is measured over **bucketed** values, so unclustered
    ///   bucketing shows up as a larger effective `c_per_u`;
    /// * each reached clustered run is widened to the bucket granularity
    ///   (`pages_per_group`), charging the false-positive sequential reads
    ///   introduced by clustered bucketing.
    pub fn cost_cm(
        &self,
        n_lookups: f64,
        bucketed_c_per_u: f64,
        pages_per_group: f64,
        clustered_height: f64,
    ) -> f64 {
        self.cost_cm_unbounded(n_lookups, bucketed_c_per_u, pages_per_group, clustered_height)
            .min(self.cost_scan())
    }

    /// [`CostParams::cost_cm`] without the scan upper bound. The CM
    /// Advisor ranks candidate designs with this variant: near the scan
    /// ceiling the bounded cost collapses every design to the same value,
    /// which would make the "smallest within X% slowdown" rule (§6.2.2)
    /// degenerate.
    pub fn cost_cm_unbounded(
        &self,
        n_lookups: f64,
        bucketed_c_per_u: f64,
        pages_per_group: f64,
        clustered_height: f64,
    ) -> f64 {
        let per_group =
            self.seek_ms * clustered_height + self.seq_page_ms * pages_per_group.max(1.0);
        n_lookups * bucketed_c_per_u * per_group
    }

    // ---- join costs ----------------------------------------------------
    //
    // A partitioned hash join prices as: build the hash table (the build
    // side's planned read cost, paid either way) + a probe-side read.
    // The two probe-side strategies reuse the single-table formulas —
    // the probe is just another access-path decision, made with exact
    // CM lookups instead of estimated statistics because by probe time
    // the build keys are known.

    /// Hash-join probe over this (probe-side) table: a full sequential
    /// sweep of the shard, probing the memory-resident hash table per
    /// row (the probe itself is charged zero I/O, like a CM lookup).
    pub fn cost_hash_probe(&self) -> f64 {
        self.cost_scan()
    }

    /// CM-clamped join probe (§5.2 applied to a join): the distinct
    /// build keys become an `IN` constraint on the probe table's CM, the
    /// reached buckets' page ranges merge into maximal contiguous runs,
    /// and the probe pays exactly what the executor charges:
    ///
    /// * one cold clustered descent (`seek · clustered_height`) — the
    ///   per-query read cache shares the upper index levels, so each
    ///   *further* run adds only its uncached leaf (`seek` each);
    /// * one head seek per merged run, then its pages sequentially
    ///   (`seek · n_runs + seq · total_pages`).
    ///
    /// `n_runs` / `total_pages` come from an exact `cm_lookup` over the
    /// build keys — not an estimate — which is why this is unbounded: an
    /// uncorrelated join key reaches buckets scattered across the whole
    /// heap, the runs stay short and numerous, and the seek term prices
    /// the clamp *above* [`CostParams::cost_hash_probe`] (runs re-seek;
    /// a scan does not), steering the planner back to the hash path.
    pub fn cost_cm_join_probe(
        &self,
        n_runs: f64,
        total_pages: f64,
        clustered_height: f64,
    ) -> f64 {
        if n_runs <= 0.0 {
            return 0.0;
        }
        self.seek_ms * (clustered_height + 2.0 * n_runs - 1.0)
            + self.seq_page_ms * total_pages
    }

    // ---- maintenance (write-side) costs --------------------------------
    //
    // The paper's Experiment 3 asymmetry, stated as per-write estimates so
    // the workload-aware advisor can amortize structure upkeep over a
    // read/write mix: every INSERT/DELETE pays a root-to-leaf descent and
    // a leaf write *per dense secondary B+Tree*, while a CM update touches
    // only its memory-resident counts.

    /// Per-write maintenance of one dense secondary B+Tree (§7.1,
    /// Experiment 3): a root-to-leaf descent (`btree_height` random
    /// reads), the leaf write, and an amortized split write every
    /// `fanout / 2` inserts. This mirrors exactly what the executor
    /// charges in `SecondaryIndex::insert`/`remove` (descent reads +
    /// leaf write + one write per node a split creates), priced cold —
    /// a warm buffer pool absorbs part of the descent, so treat this as
    /// the upper bound the advisor compares against the CM's zero.
    pub fn cost_secondary_maintenance(&self, fanout: f64) -> f64 {
        let amortized_splits = if fanout > 0.0 { 2.0 / fanout } else { 0.0 };
        self.seek_ms * (self.btree_height + 1.0 + amortized_splits)
    }

    /// Per-write maintenance of one Correlation Map: **zero charged
    /// I/O**. A CM update increments or decrements in-memory
    /// `(key, clustered-bucket)` counts (§7.1) — the whole point of the
    /// structure. Kept as an explicit function (rather than an implicit
    /// omission) so the advisor's books stay auditable next to
    /// [`CostParams::cost_secondary_maintenance`].
    pub fn cost_cm_maintenance(&self) -> f64 {
        0.0
    }

    /// Amortized cost of one workload slice against one access-structure
    /// choice: `reads · read_ms + writes · maintenance_ms`. The
    /// workload-aware advisor prices every candidate design set with
    /// this, column by column.
    pub fn cost_mixed(&self, reads: f64, read_ms: f64, writes: f64, maintenance_ms: f64) -> f64 {
        reads * read_ms + writes * maintenance_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CostParams {
        // 1M tuples, 100/page, height-3 tree, paper disk constants.
        CostParams {
            seek_ms: 5.5,
            seq_page_ms: 0.078,
            tups_per_page: 100.0,
            total_tups: 1_000_000.0,
            btree_height: 3.0,
        }
    }

    #[test]
    fn scan_cost_is_pages_times_seq() {
        let p = params();
        assert_eq!(p.pages(), 10_000.0);
        assert!((p.cost_scan() - 780.0).abs() < 1e-9);
    }

    #[test]
    fn pipelined_cost_formula() {
        let p = params();
        // 2 lookups, 50 tuples per value: 2*50*5.5*3 = 1650.
        assert!((p.cost_pipelined(2.0, 50.0) - 1650.0).abs() < 1e-9);
    }

    #[test]
    fn sorted_scan_with_strong_correlation_beats_scan() {
        let p = params();
        // c_per_u = 2, c_tups = 200 (=> 2 pages per clustered value).
        let cost = p.cost_sorted(10.0, 2.0, 200.0);
        let per_value = 5.5 * 3.0 + 0.078 * 2.0;
        assert!((cost - 10.0 * 2.0 * per_value).abs() < 1e-9);
        assert!(cost < p.cost_scan());
    }

    #[test]
    fn sorted_scan_without_correlation_degrades_to_scan() {
        let p = params();
        // Uncorrelated: each lookup touches 5000 distinct clustered values.
        let cost = p.cost_sorted(10.0, 5000.0, 200.0);
        assert_eq!(cost, p.cost_scan(), "upper-bounded by the table scan");
    }

    #[test]
    fn figure3_crossover_shape() {
        // Reproduce the *shape* of Figure 3: uncorrelated sorted scans hit
        // the scan ceiling within a handful of lookups; correlated ones
        // stay linear far beyond.
        // TPC-H-like table: large enough that a scan costs tens of
        // seconds, as in the paper's 2.5 GB lineitem.
        let p = CostParams { total_tups: 20_000_000.0, ..params() };
        let correlated = |n: f64| p.cost_sorted(n, 3.0, 150.0);
        let uncorrelated = |n: f64| p.cost_sorted(n, 7000.0 / 3.0, 150.0);
        // Uncorrelated reaches the ceiling quickly...
        assert_eq!(uncorrelated(10.0), p.cost_scan());
        // ...while the correlated path is still far below it at n = 100.
        assert!(correlated(100.0) < 0.9 * p.cost_scan());
        // And costs grow monotonically with n before the ceiling.
        assert!(correlated(20.0) > correlated(10.0));
    }

    #[test]
    fn c_pages_has_floor_of_one_page() {
        let p = params();
        assert_eq!(p.c_pages(5.0), 1.0, "a run smaller than a page still reads one");
        assert_eq!(p.c_pages(250.0), 2.5);
    }

    #[test]
    fn cm_cost_matches_sorted_when_unbucketed_and_same_height() {
        let p = params();
        let sorted = p.cost_sorted(5.0, 2.0, 200.0);
        let cm = p.cost_cm(5.0, 2.0, p.c_pages(200.0), 3.0);
        assert!((sorted - cm).abs() < 1e-9);
    }

    #[test]
    fn clustered_bucketing_adds_only_sequential_cost() {
        // Table 3 of the paper: widening clustered buckets from 1 to 40
        // pages adds ~4 ms, not multiples of the seek cost.
        let p = params();
        let narrow = p.cost_cm(2.0, 1.0, 1.0, 3.0);
        let wide = p.cost_cm(2.0, 1.0, 40.0, 3.0);
        let delta = wide - narrow;
        assert!(delta < 2.0 * 39.0 * 0.078 + 1e-9, "delta {delta} is sequential-only");
        assert!(delta > 0.0);
    }

    #[test]
    fn unclustered_bucketing_costs_seeks() {
        // Merging unclustered values multiplies c_per_u, each unit of
        // which costs a seek-laden group visit — the asymmetry the paper
        // stresses in §6.1.2.
        let p = params();
        let tight = p.cost_cm(1.0, 2.0, 2.0, 3.0);
        let merged = p.cost_cm(1.0, 8.0, 2.0, 3.0);
        assert!(merged / tight > 3.0);
    }

    #[test]
    fn cm_cost_capped_by_scan() {
        let p = params();
        assert_eq!(p.cost_cm(1000.0, 1000.0, 10.0, 3.0), p.cost_scan());
    }

    #[test]
    fn secondary_maintenance_charges_descent_and_leaf_write() {
        let p = params();
        // Height-3 descent + leaf write + 2/64 amortized split writes.
        let expected = 5.5 * (3.0 + 1.0 + 2.0 / 64.0);
        assert!((p.cost_secondary_maintenance(64.0) - expected).abs() < 1e-9);
        // Taller trees cost more to maintain.
        let tall = CostParams { btree_height: 5.0, ..p };
        assert!(tall.cost_secondary_maintenance(64.0) > p.cost_secondary_maintenance(64.0));
        // A zero fanout degrades gracefully (no split amortization).
        assert!((p.cost_secondary_maintenance(0.0) - 5.5 * 4.0).abs() < 1e-9);
    }

    #[test]
    fn cm_maintenance_is_free() {
        assert_eq!(params().cost_cm_maintenance(), 0.0);
    }

    #[test]
    fn hash_probe_prices_as_a_scan() {
        let p = params();
        assert_eq!(p.cost_hash_probe(), p.cost_scan());
    }

    #[test]
    fn cm_join_probe_crossover() {
        let p = params();
        // Correlated join key: the build keys' buckets merge into a few
        // long sequential runs — far below the probe scan.
        let clamped = p.cost_cm_join_probe(20.0, 200.0, 3.0);
        assert!(clamped < 0.5 * p.cost_hash_probe(), "{clamped}");
        // Uncorrelated join key: the reached buckets scatter, the merged
        // runs stay short and numerous, and the seek term prices the
        // clamp above the plain sweep — the signal that sends the
        // planner back to the hash join.
        let degraded = p.cost_cm_join_probe(500.0, 5_000.0, 3.0);
        assert!(degraded > p.cost_hash_probe(), "{degraded}");
        // Monotone in runs and in swept pages; empty clamps are free.
        assert!(p.cost_cm_join_probe(40.0, 200.0, 3.0) > clamped);
        assert!(p.cost_cm_join_probe(20.0, 400.0, 3.0) > clamped);
        assert_eq!(p.cost_cm_join_probe(0.0, 0.0, 3.0), 0.0);
    }

    #[test]
    fn mixed_cost_amortizes_over_the_op_mix() {
        let p = params();
        let maint = p.cost_secondary_maintenance(64.0);
        // Read-heavy: read cost dominates; write-heavy: maintenance does.
        let read_heavy = p.cost_mixed(900.0, 10.0, 100.0, maint);
        let write_heavy = p.cost_mixed(100.0, 10.0, 900.0, maint);
        assert!((read_heavy - (9000.0 + 100.0 * maint)).abs() < 1e-9);
        assert!(write_heavy > read_heavy, "B+Tree upkeep dominates a write-heavy mix");
        // The CM pays nothing on the write side whatever the mix.
        assert_eq!(p.cost_mixed(100.0, 10.0, 900.0, p.cost_cm_maintenance()), 1000.0);
    }
}
