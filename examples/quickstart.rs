//! Quickstart: the paper's Figure 4 scenario, end to end through the
//! `cm-engine` facade — create a table, load it, build a Correlation
//! Map, and let the cost-based router answer a query.
//!
//! A `people(state, city, salary)` table clustered on `state`; a CM on
//! `city` answers `SELECT AVG(salary) FROM people WHERE city = 'Boston'
//! OR city = 'Springfield'` by mapping the cities to their co-occurring
//! states and scanning just those clustered ranges.
//!
//! ```text
//! cargo run --release -p examples-host --example quickstart
//! ```

use cm_core::CmSpec;
use cm_engine::{Engine, EngineConfig};
use cm_query::{AccessPath, Pred, Query};
use cm_storage::{Column, Schema, Value, ValueType};
use std::sync::Arc;

fn main() {
    // ---- 1. An engine and a tiny table clustered on `state` ------------
    let engine = Engine::new(EngineConfig::default());
    let schema = Arc::new(Schema::new(vec![
        Column::new("state", ValueType::Str),
        Column::new("city", ValueType::Str),
        Column::new("salary", ValueType::Int),
    ]));
    let rows: Vec<Vec<Value>> = [
        ("MA", "boston", 25_000),
        ("NH", "boston", 50_000),
        ("MA", "boston", 45_000),
        ("MA", "cambridge", 80_000),
        ("MN", "manchester", 110_000),
        ("MS", "jackson", 40_000),
        ("NH", "manchester", 60_000),
        ("MA", "boston", 40_000),
        ("OH", "springfield", 95_000),
        ("OH", "toledo", 70_000),
        ("MA", "springfield", 90_000),
    ]
    .iter()
    .map(|(s, c, v)| vec![Value::str(*s), Value::str(*c), Value::Int(*v)])
    .collect();

    engine.create_table("people", schema, 0, 2, 2).expect("fresh catalog");
    let loaded = engine.load("people", rows).expect("valid rows");
    println!("loaded {loaded} rows into people(state, city, salary), clustered on state");

    // ---- 2. A Correlation Map on `city` --------------------------------
    engine.create_cm("people", "city_cm", CmSpec::single_raw(1)).expect("valid column");
    engine
        .with_table("people", |people| {
            println!("\nCM contents (city -> clustered buckets):");
            for (key, buckets) in people.cm(0).iter() {
                let states: Vec<String> = buckets
                    .keys()
                    .map(|&b| {
                        let (start, _) = people.dir().rid_range(b);
                        people.heap().peek(cm_storage::Rid(start)).unwrap()[0].to_string()
                    })
                    .collect();
                let label = match &key[0] {
                    cm_core::CmKeyPart::Raw(v) => v.to_string(),
                    cm_core::CmKeyPart::Bucket(b) => format!("bucket#{b}"),
                };
                println!("  {label:<12} -> {{{}}}", states.join(", "));
            }
        })
        .expect("table exists");

    // ---- 3. The Figure 4 query, routed by the cost model ---------------
    let q = Query::single(Pred::is_in(
        1,
        vec![Value::str("boston"), Value::str("springfield")],
    ));
    let out = engine.execute_collect("people", &q).expect("query runs");
    let rows = out.rows.as_deref().unwrap_or_default();
    let sum: i64 = rows.iter().map(|r| r[2].as_int().unwrap()).sum();
    let n = rows.len().max(1) as i64;
    let path = match out.plan.path {
        AccessPath::CmScan(_) => "CM-guided scan",
        AccessPath::FullScan => "full scan",
        AccessPath::SecondarySorted(_) => "sorted secondary scan",
        AccessPath::SecondaryPipelined(_) => "pipelined secondary scan",
    };
    println!(
        "\nSELECT AVG(salary) WHERE city IN ('boston','springfield')\n  \
         -> routed to: {path} (estimated {:.2} ms)\n  \
         -> AVG = {} over {} rows (examined {} incl. false positives)\n  \
         -> simulated I/O: {} pages, {:.2} ms",
        out.plan.est_ms,
        sum / n,
        out.run.matched,
        out.run.examined,
        out.run.io.pages(),
        out.run.ms()
    );

    // ---- 4. Compare the paths head-to-head (cold reads) ----------------
    let mut cold = engine.session();
    cold.set_cold_reads(true);
    engine.disk().reset();
    let cm_run = cold
        .execute_via("people", AccessPath::CmScan(0), &q)
        .expect("forced CM path runs");
    engine.disk().reset();
    let scan = cold
        .execute_via("people", AccessPath::FullScan, &q)
        .expect("forced scan runs");
    println!(
        "cold CM-guided scan: {} pages (skips MN/MS, pays one clustered-index probe per \
         state)\ncold full scan:      {} pages — same answer either way; at this toy \
         scale the router correctly prefers the scan, and at catalog scale (see the \
         ebay_catalog example) the CM wins by an order of magnitude",
        cm_run.run.io.pages(),
        scan.run.io.pages()
    );
    assert_eq!(scan.run.matched, out.run.matched);
    assert_eq!(cm_run.run.matched, out.run.matched);
}
