//! Quickstart: the paper's Figure 4 scenario, end to end.
//!
//! A `people(state, city, salary)` table clustered on `state`; a
//! Correlation Map on `city` answers
//! `SELECT AVG(salary) FROM people WHERE city = 'Boston' OR city =
//! 'Springfield'` by mapping the cities to their co-occurring states and
//! scanning just those clustered ranges.
//!
//! ```text
//! cargo run --release -p examples-host --example quickstart
//! ```

use cm_core::CmSpec;
use cm_query::{ExecContext, Pred, Query, Table};
use cm_storage::{Column, DiskSim, Schema, Value, ValueType};
use std::sync::Arc;

fn main() {
    // ---- 1. A tiny table, clustered on `state` -------------------------
    let schema = Arc::new(Schema::new(vec![
        Column::new("state", ValueType::Str),
        Column::new("city", ValueType::Str),
        Column::new("salary", ValueType::Int),
    ]));
    let rows: Vec<Vec<Value>> = [
        ("MA", "boston", 25_000),
        ("NH", "boston", 50_000),
        ("MA", "boston", 45_000),
        ("MA", "cambridge", 80_000),
        ("MN", "manchester", 110_000),
        ("MS", "jackson", 40_000),
        ("NH", "manchester", 60_000),
        ("MA", "boston", 40_000),
        ("OH", "springfield", 95_000),
        ("OH", "toledo", 70_000),
        ("MA", "springfield", 90_000),
    ]
    .iter()
    .map(|(s, c, v)| vec![Value::str(*s), Value::str(*c), Value::Int(*v)])
    .collect();

    let disk = DiskSim::with_defaults();
    let mut people = Table::build(&disk, schema, rows, 2, 0, 2).expect("valid rows");

    // ---- 2. A Correlation Map on `city` --------------------------------
    let cm = people.add_cm("city_cm", CmSpec::single_raw(1));
    println!("CM contents (city -> clustered buckets):");
    for (key, buckets) in people.cm(cm).iter() {
        let states: Vec<String> = buckets
            .keys()
            .map(|&b| {
                let (start, _) = people.dir().rid_range(b);
                people.heap().peek(cm_storage::Rid(start)).unwrap()[0].to_string()
            })
            .collect();
        println!("  {:<12} -> {{{}}}", format!("{}", key[0].clone_display()), states.join(", "));
    }

    // ---- 3. The Figure 4 query through the CM --------------------------
    let q = Query::single(Pred::is_in(
        1,
        vec![Value::str("boston"), Value::str("springfield")],
    ));
    let ctx = ExecContext::cold(&disk);
    let mut sum = 0i64;
    let mut n = 0i64;
    let run = people.exec_cm_scan_visit(&ctx, cm, &q, |row| {
        sum += row[2].as_int().unwrap();
        n += 1;
    });
    println!(
        "\nSELECT AVG(salary) WHERE city IN ('boston','springfield')\n  \
         -> AVG = {} over {} rows (examined {} incl. false positives)\n  \
         -> simulated I/O: {} pages, {:.2} ms",
        sum / n,
        run.matched,
        run.examined,
        run.io.pages(),
        run.ms()
    );

    // ---- 4. Compare with a full scan ------------------------------------
    let scan = people.exec_full_scan(&ctx, &q);
    println!(
        "full scan: {} pages, {:.2} ms — same answer, more I/O",
        scan.io.pages(),
        scan.ms()
    );
    assert_eq!(scan.matched, run.matched);
}

/// Small display helper for CM key parts.
trait CloneDisplay {
    fn clone_display(&self) -> String;
}
impl CloneDisplay for cm_core::CmKeyPart {
    fn clone_display(&self) -> String {
        match self {
            cm_core::CmKeyPart::Raw(v) => v.to_string(),
            cm_core::CmKeyPart::Bucket(b) => format!("bucket#{b}"),
        }
    }
}
