//! Sky-survey scenario (the paper's SDSS dataset, Experiment 5), served
//! by the `cm-engine` facade.
//!
//! Neither right ascension nor declination alone predicts where an
//! object lives in an `objID`-clustered table — but the *pair* does.
//! This example registers single-attribute CMs, a composite CM, and a
//! composite B+Tree with the engine and runs the paper's two-range query
//! against all four, reproducing Table 6's ordering.
//!
//! ```text
//! cargo run --release -p examples-host --example sdss_sky_survey
//! ```

use cm_core::{BucketSpec, CmAttr, CmSpec};
use cm_datagen::sdss::{sdss, SdssConfig, COL_DEC, COL_OBJID, COL_RA};
use cm_engine::{Engine, EngineConfig};
use cm_query::{AccessPath, Pred, Query};

fn main() {
    // ---- 1. Generate the sky and cluster on objID ----------------------
    let data = sdss(SdssConfig { rows: 50_000, fields: 251, stripes: 20, seed: 5 });
    let engine = Engine::new(EngineConfig::default());
    engine
        .create_table("photo_tag", data.schema.clone(), COL_OBJID, 25, 250)
        .expect("fresh catalog");
    engine.load("photo_tag", data.rows.clone()).expect("generated rows conform");
    let info = engine.table_info("photo_tag").expect("table exists");
    println!(
        "PhotoTag: {} objects over {} pages, clustered on objID (telescope scan order)",
        info.rows, info.pages
    );

    // ---- 2. Four access structures through the engine -------------------
    let cm_ra = engine
        .create_cm(
            "photo_tag",
            "cm_ra",
            CmSpec::new(vec![CmAttr { col: COL_RA, bucket: BucketSpec::covering(0.0, 360.0, 4096) }]),
        )
        .unwrap();
    let cm_dec = engine
        .create_cm(
            "photo_tag",
            "cm_dec",
            CmSpec::new(vec![CmAttr {
                col: COL_DEC,
                bucket: BucketSpec::covering(-10.0, 10.0, 16_384),
            }]),
        )
        .unwrap();
    let cm_pair = engine
        .create_cm(
            "photo_tag",
            "cm_ra_dec",
            CmSpec::new(vec![
                CmAttr { col: COL_RA, bucket: BucketSpec::covering(0.0, 360.0, 16_384) },
                CmAttr { col: COL_DEC, bucket: BucketSpec::covering(-10.0, 10.0, 65_536) },
            ]),
        )
        .unwrap();
    let bt_pair = engine
        .create_btree("photo_tag", "btree_ra_dec", vec![COL_RA, COL_DEC])
        .unwrap();

    // ---- 3. The two-range sky query -------------------------------------
    let q = Query::new(vec![
        Pred::between(COL_RA, 193.0, 197.0),
        Pred::between(COL_DEC, 1.4, 1.7),
    ]);
    // Cold session + disk reset between runs: each path is measured from
    // the same head position, as the paper flushes caches between trials.
    let mut session = engine.session();
    session.set_cold_reads(true);
    println!("\nSELECT COUNT(*) WHERE ra IN [193,197] AND dec IN [1.4,1.7]:");
    for (label, path) in [
        ("CM(ra)", AccessPath::CmScan(cm_ra)),
        ("CM(dec)", AccessPath::CmScan(cm_dec)),
        ("CM(ra,dec)", AccessPath::CmScan(cm_pair)),
        ("B+Tree(ra,dec)", AccessPath::SecondarySorted(bt_pair)),
    ] {
        engine.disk().reset();
        let r = session.execute_via("photo_tag", path, &q).unwrap();
        let size = engine
            .with_table("photo_tag", |t| match path {
                AccessPath::CmScan(id) => t.cm(id).size_bytes(),
                AccessPath::SecondarySorted(id) => t.secondary(id).size_bytes(),
                _ => 0,
            })
            .unwrap();
        println!(
            "  {:<15} {:>9.1} ms  {:>7} pages  {:>9} bytes  ({} matches)",
            label,
            r.run.ms(),
            r.run.io.pages(),
            size,
            r.run.matched
        );
    }

    // The router reaches the same conclusion on its own.
    let choice = engine.explain("photo_tag", &q).unwrap().primary();
    println!(
        "\nrouter picks {:?} (estimated {:.1} ms)",
        choice.path, choice.est_ms
    );
    println!(
        "the composite CM wins because (ra, dec) jointly determine the scan position \
         while each coordinate alone scatters across every declination stripe — and the \
         composite B+Tree can only use its ra prefix for the range."
    );
}
