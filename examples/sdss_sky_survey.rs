//! Sky-survey scenario (the paper's SDSS dataset, Experiment 5).
//!
//! Neither right ascension nor declination alone predicts where an
//! object lives in an `objID`-clustered table — but the *pair* does.
//! This example builds single-attribute CMs, a composite CM, and a
//! composite B+Tree, and runs the paper's two-range query against all
//! four, reproducing Table 6's ordering.
//!
//! ```text
//! cargo run --release -p examples-host --example sdss_sky_survey
//! ```

use cm_core::{BucketSpec, CmAttr, CmSpec};
use cm_datagen::sdss::{sdss, SdssConfig, COL_DEC, COL_OBJID, COL_RA};
use cm_query::{ExecContext, Pred, Query, Table};
use cm_storage::DiskSim;

fn main() {
    // ---- 1. Generate the sky and cluster on objID ----------------------
    let data = sdss(SdssConfig { rows: 50_000, fields: 251, stripes: 20, seed: 5 });
    let disk = DiskSim::with_defaults();
    let mut photo = Table::build(&disk, data.schema.clone(), data.rows.clone(), 25, COL_OBJID, 250)
        .expect("generated rows conform");
    println!(
        "PhotoTag: {} objects over {} pages, clustered on objID (telescope scan order)",
        photo.heap().len(),
        photo.heap().num_pages()
    );

    // ---- 2. Four access structures --------------------------------------
    let cm_ra = photo.add_cm(
        "cm_ra",
        CmSpec::new(vec![CmAttr { col: COL_RA, bucket: BucketSpec::covering(0.0, 360.0, 4096) }]),
    );
    let cm_dec = photo.add_cm(
        "cm_dec",
        CmSpec::new(vec![CmAttr {
            col: COL_DEC,
            bucket: BucketSpec::covering(-10.0, 10.0, 16_384),
        }]),
    );
    let cm_pair = photo.add_cm(
        "cm_ra_dec",
        CmSpec::new(vec![
            CmAttr { col: COL_RA, bucket: BucketSpec::covering(0.0, 360.0, 16_384) },
            CmAttr { col: COL_DEC, bucket: BucketSpec::covering(-10.0, 10.0, 65_536) },
        ]),
    );
    let bt_pair = photo.add_secondary(&disk, "btree_ra_dec", vec![COL_RA, COL_DEC]);

    // ---- 3. The two-range sky query -------------------------------------
    let q = Query::new(vec![
        Pred::between(COL_RA, 193.0, 197.0),
        Pred::between(COL_DEC, 1.4, 1.7),
    ]);
    let ctx = ExecContext::cold(&disk);
    println!("\nSELECT COUNT(*) WHERE ra IN [193,197] AND dec IN [1.4,1.7]:");
    for (label, id, is_cm) in [
        ("CM(ra)", cm_ra, true),
        ("CM(dec)", cm_dec, true),
        ("CM(ra,dec)", cm_pair, true),
        ("B+Tree(ra,dec)", bt_pair, false),
    ] {
        disk.reset();
        let r = if is_cm {
            photo.exec_cm_scan(&ctx, id, &q)
        } else {
            photo.exec_secondary_sorted(&ctx, id, &q)
        };
        let size = if is_cm {
            photo.cm(id).size_bytes()
        } else {
            photo.secondary(id).size_bytes()
        };
        println!(
            "  {:<15} {:>9.1} ms  {:>7} pages  {:>9} bytes  ({} matches)",
            label,
            r.ms(),
            r.io.pages(),
            size,
            r.matched
        );
    }
    println!(
        "\nthe composite CM wins because (ra, dec) jointly determine the scan position \
         while each coordinate alone scatters across every declination stripe — and the \
         composite B+Tree can only use its ra prefix for the range."
    );
}
