//! Product-catalog scenario (the paper's eBay dataset, Experiments 1–3).
//!
//! Builds the hierarchical catalog clustered on `CATID`, lets the **CM
//! Advisor** recommend a bucketed CM for a price-range training query,
//! materializes it, and compares the three access paths; then
//! demonstrates why CM maintenance is cheap by inserting a batch through
//! a buffer pool with a WAL.
//!
//! ```text
//! cargo run --release -p examples-host --example ebay_catalog
//! ```

use cm_advisor::{Advisor, AdvisorConfig};
use cm_core::CmSpec;
use cm_datagen::ebay::{ebay, EbayConfig, COL_CATID, COL_PRICE};
use cm_query::{ExecContext, Pred, Query, Table};
use cm_storage::{BufferPool, DiskSim, Wal};

fn main() {
    // ---- 1. Generate and load the catalog ------------------------------
    let mut data = ebay(EbayConfig { categories: 4_000, min_items: 10, max_items: 30, seed: 7 });
    let disk = DiskSim::with_defaults();
    let mut items =
        Table::build(&disk, data.schema.clone(), data.rows.clone(), 90, COL_CATID, 900)
            .expect("generated rows conform");
    println!(
        "ITEMS: {} rows over {} pages, clustered on CATID ({} categories)",
        items.heap().len(),
        items.heap().num_pages(),
        items.clustered().distinct_values()
    );

    // ---- 2. Ask the advisor for a CM design ----------------------------
    items.analyze_cols(&[COL_PRICE]);
    let training = Query::single(Pred::between(COL_PRICE, 100_000i64, 101_000i64));
    let advisor = Advisor::new(AdvisorConfig { sample_size: 10_000, ..Default::default() });
    let rec = advisor.recommend(&items, &disk.config(), &training, 0.10);
    let chosen = rec.chosen_design().expect("a design qualifies");
    println!(
        "\nadvisor recommends: [{}] — est. {:.1} clustered buckets per key, ~{} bytes \
         ({:.3}% of the equivalent B+Tree)",
        chosen.design.label(items.heap().schema()),
        chosen.c_per_u,
        chosen.size_bytes as u64,
        chosen.size_ratio * 100.0
    );

    // ---- 3. Materialize it and run the workload ------------------------
    let cm = items.add_cm("advisor_cm", CmSpec::new(chosen.design.attrs.clone()));
    let sec = items.add_secondary(&disk, "price_btree", vec![COL_PRICE]);
    let q = Query::single(Pred::between(COL_PRICE, 100_000i64, 101_000i64));
    let ctx = ExecContext::cold(&disk);
    let cm_run = items.exec_cm_scan(&ctx, cm, &q);
    let bt_run = items.exec_secondary_sorted(&ctx, sec, &q);
    let scan = items.exec_full_scan(&ctx, &q);
    println!("\nPrice BETWEEN $100.0k AND $101.0k ({} matches):", cm_run.matched);
    println!("  CM-guided scan : {:>9.1} ms ({} pages)", cm_run.ms(), cm_run.io.pages());
    println!("  B+Tree bitmap  : {:>9.1} ms ({} pages)", bt_run.ms(), bt_run.io.pages());
    println!("  full table scan: {:>9.1} ms ({} pages)", scan.ms(), scan.io.pages());
    println!(
        "  sizes: CM {} KB vs B+Tree {} KB",
        items.cm(cm).size_bytes() / 1024,
        items.secondary(sec).size_bytes() / 1024
    );

    // ---- 4. Maintenance: insert a batch through pool + WAL -------------
    let pool = BufferPool::new(disk.clone(), 256);
    let mut wal = Wal::new(disk.clone());
    let batch = data.insert_batch(5_000, 99);
    disk.reset();
    for row in batch {
        items.insert_row(&pool, Some(&mut wal), row).expect("row conforms");
    }
    wal.commit();
    pool.flush_all();
    println!(
        "\ninserted 5000 rows maintaining 1 B+Tree + 1 CM: {:.1} ms simulated \
         ({} dirty evictions, {} WAL records)",
        disk.stats().elapsed_ms,
        pool.stats().dirty_evictions,
        wal.records()
    );
    // Fresh rows are immediately visible through the CM.
    let after = items.exec_cm_scan(&ExecContext::cold(&disk), cm, &q);
    assert!(after.matched >= cm_run.matched);
    println!("CM still answers correctly after maintenance ({} matches)", after.matched);
}
