//! Product-catalog scenario (the paper's eBay dataset, Experiments 1–3),
//! served by the `cm-engine` facade.
//!
//! Loads the hierarchical catalog clustered on `CATID`, lets the **CM
//! Advisor** recommend a bucketed CM for a price-range training query,
//! materializes it through the engine, compares the three access paths,
//! and demonstrates cheap CM maintenance by inserting a batch through an
//! engine session (shared buffer pool + WAL).
//!
//! ```text
//! cargo run --release -p examples-host --example ebay_catalog
//! ```

use cm_advisor::{Advisor, AdvisorConfig};
use cm_core::CmSpec;
use cm_datagen::ebay::{ebay, EbayConfig, COL_CATID, COL_PRICE};
use cm_engine::{Engine, EngineConfig};
use cm_query::{AccessPath, Pred, Query};

fn main() {
    // ---- 1. Generate and load the catalog ------------------------------
    let mut data = ebay(EbayConfig { categories: 4_000, min_items: 10, max_items: 30, seed: 7 });
    let engine = Engine::new(EngineConfig { pool_pages: 256, ..EngineConfig::default() });
    engine
        .create_table("items", data.schema.clone(), COL_CATID, 90, 900)
        .expect("fresh catalog");
    engine.load("items", data.rows.clone()).expect("generated rows conform");
    let info = engine.table_info("items").expect("table exists");
    println!(
        "ITEMS: {} rows over {} pages, clustered on CATID",
        info.rows, info.pages
    );

    // ---- 2. Ask the advisor for a CM design ----------------------------
    engine.analyze("items", &[COL_PRICE]).expect("stats scan");
    let training = Query::single(Pred::between(COL_PRICE, 100_000i64, 101_000i64));
    let advisor = Advisor::new(AdvisorConfig { sample_size: 10_000, ..Default::default() });
    let disk_cfg = engine.disk().config();
    let chosen = engine
        .with_table("items", |items| {
            let rec = advisor.recommend(items, &disk_cfg, &training, 0.10);
            let chosen = rec.chosen_design().expect("a design qualifies").clone();
            println!(
                "\nadvisor recommends: [{}] — est. {:.1} clustered buckets per key, ~{} bytes \
                 ({:.3}% of the equivalent B+Tree)",
                chosen.design.label(items.heap().schema()),
                chosen.c_per_u,
                chosen.size_bytes as u64,
                chosen.size_ratio * 100.0
            );
            chosen
        })
        .expect("table exists");

    // ---- 3. Materialize it through the engine and run the workload -----
    let cm = engine
        .create_cm("items", "advisor_cm", CmSpec::new(chosen.design.attrs.clone()))
        .expect("advisor design materializes");
    let sec = engine
        .create_btree("items", "price_btree", vec![COL_PRICE])
        .expect("price index builds");
    let q = Query::single(Pred::between(COL_PRICE, 100_000i64, 101_000i64));

    // Cold session: reads charge straight to the disk, as in the paper's
    // flushed-cache query experiments.
    let mut session = engine.session();
    session.set_cold_reads(true);
    let cm_run = session.execute_via("items", AccessPath::CmScan(cm), &q).unwrap();
    let bt_run = session.execute_via("items", AccessPath::SecondarySorted(sec), &q).unwrap();
    let scan = session.execute_via("items", AccessPath::FullScan, &q).unwrap();
    println!("\nPrice BETWEEN $100.0k AND $101.0k ({} matches):", cm_run.run.matched);
    println!(
        "  CM-guided scan : {:>9.1} ms ({} pages)",
        cm_run.run.ms(),
        cm_run.run.io.pages()
    );
    println!(
        "  B+Tree bitmap  : {:>9.1} ms ({} pages)",
        bt_run.run.ms(),
        bt_run.run.io.pages()
    );
    println!(
        "  full table scan: {:>9.1} ms ({} pages)",
        scan.run.ms(),
        scan.run.io.pages()
    );
    let (cm_kb, bt_kb) = engine
        .with_table("items", |t| (t.cm(cm).size_bytes() / 1024, t.secondary(sec).size_bytes() / 1024))
        .unwrap();
    println!("  sizes: CM {cm_kb} KB vs B+Tree {bt_kb} KB");

    // The engine's own router agrees: the query leaves the scan behind.
    let routed = engine.execute("items", &q).expect("routed execution");
    println!(
        "  router picks {:?} (estimated {:.1} ms)",
        routed.plan.path, routed.plan.est_ms
    );
    assert_ne!(routed.plan.path, AccessPath::FullScan);

    // ---- 4. Maintenance: insert a batch through the session ------------
    let io_before = engine.stats().io;
    let batch = data.insert_batch(5_000, 99);
    session.insert_many("items", batch).expect("rows conform");
    engine.flush_pool();
    let io = engine.stats().io.since(&io_before);
    let stats = engine.stats();
    println!(
        "\ninserted 5000 rows maintaining 1 B+Tree + 1 CM: {:.1} ms simulated \
         ({} dirty evictions, {} WAL records)",
        io.elapsed_ms,
        stats.pool.dirty_evictions,
        stats.wal_records
    );
    // Fresh rows are immediately visible through the CM.
    let after = session.execute_via("items", AccessPath::CmScan(cm), &q).unwrap();
    assert!(after.run.matched >= cm_run.run.matched);
    println!(
        "CM still answers correctly after maintenance ({} matches)",
        after.run.matched
    );
}
