//! Data-warehouse scenario (the paper's TPC-H dataset, §3.3–3.4).
//!
//! `shipdate` and `receiptdate` are tied by a soft FD (goods arrive 2, 4,
//! or 5 days after shipping). Clustering `lineitem` on `receiptdate`
//! makes a secondary structure on `shipdate` behave almost like a
//! clustered index — and the cost-based planner knows it.
//!
//! ```text
//! cargo run --release -p examples-host --example tpch_warehouse
//! ```

use cm_core::CmSpec;
use cm_datagen::tpch::{tpch_lineitem, TpchConfig, COL_ORDERKEY, COL_RECEIPTDATE, COL_SHIPDATE};
use cm_query::{AccessPath, ExecContext, Planner, Pred, Query, Table};
use cm_stats::correlation_stats;
use cm_storage::DiskSim;

fn main() {
    let data = tpch_lineitem(TpchConfig { rows: 100_000, parts: 5_000, suppliers: 250, seed: 3 });

    // ---- 1. Measure the soft FD -----------------------------------------
    let fd = correlation_stats(
        data.rows.iter().map(|r| (&r[COL_SHIPDATE], &r[COL_RECEIPTDATE])),
    );
    println!(
        "soft FD shipdate -> receiptdate: c_per_u = {:.1} (each shipdate co-occurs \
         with ~{:.0} receiptdates out of {})",
        fd.c_per_u, fd.c_per_u, fd.distinct_c
    );

    // ---- 2. Two clusterings of the same rows -----------------------------
    let disk_good = DiskSim::with_defaults();
    let mut good = Table::build(
        &disk_good, data.schema.clone(), data.rows.clone(), 60, COL_RECEIPTDATE, 600,
    )
    .expect("rows conform");
    let disk_bad = DiskSim::with_defaults();
    let mut bad = Table::build(
        &disk_bad, data.schema.clone(), data.rows.clone(), 60, COL_ORDERKEY, 600,
    )
    .expect("rows conform");
    let sec_good = good.add_secondary(&disk_good, "ship_idx", vec![COL_SHIPDATE]);
    let sec_bad = bad.add_secondary(&disk_bad, "ship_idx", vec![COL_SHIPDATE]);
    let cm_good = good.add_cm("ship_cm", CmSpec::single_raw(COL_SHIPDATE));

    // ---- 3. The Figure 3 query ------------------------------------------
    let q = Query::single(Pred::is_in(COL_SHIPDATE, data.random_shipdates(10, 42)));
    let ctx_g = ExecContext::cold(&disk_good);
    let ctx_b = ExecContext::cold(&disk_bad);
    let r_btree_good = good.exec_secondary_sorted(&ctx_g, sec_good, &q);
    let r_cm_good = good.exec_cm_scan(&ctx_g, cm_good, &q);
    let r_btree_bad = bad.exec_secondary_sorted(&ctx_b, sec_bad, &q);
    let r_scan = bad.exec_full_scan(&ctx_b, &q);
    println!("\nshipdate IN (10 dates), {} matching rows:", r_scan.matched);
    println!("  clustered receiptdate + B+Tree: {:>9.1} ms", r_btree_good.ms());
    println!("  clustered receiptdate + CM    : {:>9.1} ms (CM is {} bytes)",
        r_cm_good.ms(), good.cm(cm_good).size_bytes());
    println!("  clustered orderkey   + B+Tree: {:>9.1} ms", r_btree_bad.ms());
    println!("  full table scan               : {:>9.1} ms", r_scan.ms());

    // ---- 4. Let the planner decide ---------------------------------------
    good.analyze_cols(&[COL_SHIPDATE]);
    let planner = Planner::new(disk_good.config());
    let choice = planner.choose(&good, &q);
    let label = match choice.path {
        AccessPath::FullScan => "full scan".to_string(),
        AccessPath::SecondarySorted(i) => format!("sorted scan via {}", good.secondary(i).name()),
        AccessPath::SecondaryPipelined(i) => {
            format!("pipelined scan via {}", good.secondary(i).name())
        }
        AccessPath::CmScan(i) => format!("CM-guided scan via {}", good.cm(i).name()),
    };
    println!("\nplanner on the 10-date query: {label} (estimated {:.1} ms)", choice.est_ms);
    for (path, est) in &choice.alternatives {
        println!("  candidate {:<28} est {:>9.1} ms", format!("{path:?}"), est);
    }

    // A selective single-date query flips the decision to an index path.
    let selective = Query::single(Pred::is_in(COL_SHIPDATE, data.random_shipdates(1, 7)));
    let choice2 = planner.choose(&good, &selective);
    println!(
        "\nplanner on a single-date query: {:?} (estimated {:.1} ms) — selective \
         lookups go through the correlated structures",
        choice2.path, choice2.est_ms
    );
    assert_ne!(choice2.path, AccessPath::FullScan);
}
