//! Data-warehouse scenario (the paper's TPC-H dataset, §3.3–3.4),
//! served by two `cm-engine` instances — one per physical clustering.
//!
//! `shipdate` and `receiptdate` are tied by a soft FD (goods arrive 2, 4,
//! or 5 days after shipping). Clustering `lineitem` on `receiptdate`
//! makes a secondary structure on `shipdate` behave almost like a
//! clustered index — and the engine's cost-based router knows it.
//!
//! ```text
//! cargo run --release -p examples-host --example tpch_warehouse
//! ```

use cm_core::CmSpec;
use cm_datagen::tpch::{tpch_lineitem, TpchConfig, COL_ORDERKEY, COL_RECEIPTDATE, COL_SHIPDATE};
use cm_engine::{Engine, EngineConfig};
use cm_query::{AccessPath, Pred, Query};
use cm_stats::correlation_stats;
use std::sync::Arc;

fn engine_clustered_on(
    data: &cm_datagen::TpchData,
    cluster_col: usize,
) -> Arc<Engine> {
    let engine = Engine::new(EngineConfig::default());
    engine
        .create_table("lineitem", data.schema.clone(), cluster_col, 60, 600)
        .expect("fresh catalog");
    engine.load("lineitem", data.rows.clone()).expect("rows conform");
    engine
        .create_btree("lineitem", "ship_idx", vec![COL_SHIPDATE])
        .expect("index builds");
    engine
}

fn main() {
    let data = tpch_lineitem(TpchConfig { rows: 100_000, parts: 5_000, suppliers: 250, seed: 3 });

    // ---- 1. Measure the soft FD -----------------------------------------
    let fd = correlation_stats(
        data.rows.iter().map(|r| (&r[COL_SHIPDATE], &r[COL_RECEIPTDATE])),
    );
    println!(
        "soft FD shipdate -> receiptdate: c_per_u = {:.1} (each shipdate co-occurs \
         with ~{:.0} receiptdates out of {})",
        fd.c_per_u, fd.c_per_u, fd.distinct_c
    );

    // ---- 2. Two engines, two clusterings of the same rows ----------------
    let good = engine_clustered_on(&data, COL_RECEIPTDATE);
    let bad = engine_clustered_on(&data, COL_ORDERKEY);
    let cm_good = good
        .create_cm("lineitem", "ship_cm", CmSpec::single_raw(COL_SHIPDATE))
        .expect("CM builds");

    // ---- 3. The Figure 3 query ------------------------------------------
    let q = Query::single(Pred::is_in(COL_SHIPDATE, data.random_shipdates(10, 42)));
    let mut s_good = good.session();
    s_good.set_cold_reads(true);
    let mut s_bad = bad.session();
    s_bad.set_cold_reads(true);
    let r_btree_good = s_good.execute_via("lineitem", AccessPath::SecondarySorted(0), &q).unwrap();
    let r_cm_good = s_good.execute_via("lineitem", AccessPath::CmScan(cm_good), &q).unwrap();
    let r_btree_bad = s_bad.execute_via("lineitem", AccessPath::SecondarySorted(0), &q).unwrap();
    let r_scan = s_bad.execute_via("lineitem", AccessPath::FullScan, &q).unwrap();
    let cm_bytes = good.with_table("lineitem", |t| t.cm(cm_good).size_bytes()).unwrap();
    println!("\nshipdate IN (10 dates), {} matching rows:", r_scan.run.matched);
    println!("  clustered receiptdate + B+Tree: {:>9.1} ms", r_btree_good.run.ms());
    println!(
        "  clustered receiptdate + CM    : {:>9.1} ms (CM is {cm_bytes} bytes)",
        r_cm_good.run.ms()
    );
    println!("  clustered orderkey   + B+Tree: {:>9.1} ms", r_btree_bad.run.ms());
    println!("  full table scan               : {:>9.1} ms", r_scan.run.ms());

    // ---- 4. Let the engine's router decide -------------------------------
    let choice = good.explain("lineitem", &q).unwrap().primary();
    let label = good
        .with_table("lineitem", |t| match choice.path {
            AccessPath::FullScan => "full scan".to_string(),
            AccessPath::SecondarySorted(i) => {
                format!("sorted scan via {}", t.secondary(i).name())
            }
            AccessPath::SecondaryPipelined(i) => {
                format!("pipelined scan via {}", t.secondary(i).name())
            }
            AccessPath::CmScan(i) => format!("CM-guided scan via {}", t.cm(i).name()),
        })
        .unwrap();
    println!("\nrouter on the 10-date query: {label} (estimated {:.1} ms)", choice.est_ms);
    for (path, est) in &choice.alternatives {
        println!("  candidate {:<28} est {:>9.1} ms", format!("{path:?}"), est);
    }

    // A selective single-date query flips the decision to an index path.
    let selective = Query::single(Pred::is_in(COL_SHIPDATE, data.random_shipdates(1, 7)));
    let out = good.execute("lineitem", &selective).unwrap();
    println!(
        "\nrouter on a single-date query: {:?} (estimated {:.1} ms, measured {:.1} ms) — \
         selective lookups go through the correlated structures",
        out.plan.path,
        out.plan.est_ms,
        out.run.ms()
    );
    assert_ne!(out.plan.path, AccessPath::FullScan);
    println!(
        "\nrouting tally for the receiptdate-clustered engine: {:?}",
        good.route_counts()
    );
}
